"""Second round of property-based tests: algorithms and scale model."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.extensions.mis import maximal_independent_set
from repro.algorithms.extensions.sssp import edge_weights, shortest_path_lengths
from repro.algorithms.evo import EvoProgram
from repro.graph.builder import from_edges
from repro.platforms.scale import ScaleModel


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=90, directed=None):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    if directed is None:
        directed = draw(st.booleans())
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2), directed


def _build(spec):
    n, edges, directed = spec
    return from_edges(n, edges, directed=directed)


# -- MIS invariants ---------------------------------------------------------


@given(edge_lists())
@settings(max_examples=50, deadline=None)
def test_mis_is_independent_and_maximal(spec):
    g = _build(spec)
    mis = maximal_independent_set(g)
    und = g.as_undirected() if g.directed else g
    for v in range(g.num_vertices):
        nbrs = und.neighbors(v)
        if mis[v]:
            # independence: no neighbor is in the set
            assert not mis[nbrs].any()
        else:
            # maximality: some neighbor must be in the set
            assert len(nbrs) > 0 and mis[nbrs].any()


# -- SSSP vs Dijkstra ------------------------------------------------------------


@given(edge_lists(), st.data())
@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sssp_program_matches_dijkstra(spec, data):
    from repro.algorithms.base import get_algorithm

    g = _build(spec)
    source = data.draw(st.integers(min_value=0, max_value=g.num_vertices - 1))
    prog = get_algorithm("sssp").program(g, source=source)
    for _ in prog:
        pass
    ref = shortest_path_lengths(g, source)
    assert np.allclose(prog.result(), ref, equal_nan=True)


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40),
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_edge_weights_bounded_and_deterministic(srcs, dsts):
    k = min(len(srcs), len(dsts))
    s = np.array(srcs[:k])
    d = np.array(dsts[:k])
    w1 = edge_weights(s, d)
    w2 = edge_weights(s, d)
    assert np.array_equal(w1, w2)
    assert np.all((w1 >= 1) & (w1 <= 8))


# -- EVO monotonicity ------------------------------------------------------------


@given(edge_lists(), st.integers(min_value=1, max_value=10))
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_evo_only_adds(spec, seed):
    g = _build(spec)
    prog = EvoProgram(g, growth_fraction=0.2, iterations=3, seed=seed)
    for _ in prog:
        pass
    evolved = prog.result()
    assert evolved.num_vertices >= g.num_vertices
    assert evolved.num_edges >= g.num_edges
    for v in range(g.num_vertices):
        assert set(g.neighbors(v).tolist()) <= set(evolved.neighbors(v).tolist())


# -- ScaleModel algebra ------------------------------------------------------------


@given(
    st.floats(min_value=0.1, max_value=1e4),
    st.floats(min_value=0.1, max_value=1e4),
    st.floats(min_value=0.1, max_value=1e2),
    st.booleans(),
    st.floats(min_value=1e-6, max_value=1e9),
)
@settings(max_examples=100, deadline=None)
def test_scale_model_linear_and_consistent(v_mult, e_mult, d_mult, hub, x):
    import pytest

    s = ScaleModel(v_mult=v_mult, e_mult=e_mult, d_mult=d_mult, hub_scaled=hub)
    assert s.vertices(x) == x * v_mult
    assert s.edges(x) == x * e_mult
    # quadratic multiplier is consistent with its definition
    expected = v_mult * v_mult if hub else e_mult * d_mult
    assert s.degree_quadratic(x) == pytest.approx(x * expected)
    # linearity (up to float rounding)
    assert s.edges(2 * x) == pytest.approx(2 * s.edges(x), rel=1e-12)


# -- monitor sampling conservation -------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),
            st.floats(min_value=0.01, max_value=50.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=50, deadline=None)
def test_trace_series_nonnegative_and_bounded(intervals):
    from repro.cluster.monitoring import ResourceTrace

    tr = ResourceTrace()
    total = 0.0
    for start, length, value in intervals:
        tr.record("w", start, start + length, cpu=value)
        total += value
    series = tr.series("w", "cpu", num_points=64)
    assert np.all(series >= 0)
    # a sample can never exceed the sum of all overlapping values
    assert series.max() <= total + 1e-9
