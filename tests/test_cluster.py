"""Tests for the cluster substrate: specs, HDFS, monitoring."""

import numpy as np
import pytest

from repro.cluster.hdfs import HDFS
from repro.cluster.monitoring import MASTER, ResourceTrace, normalize_series, worker_node
from repro.cluster.spec import DAS4_MACHINE, GB, MB, ClusterSpec, das4_cluster


class TestSpecs:
    def test_das4_defaults(self):
        c = das4_cluster()
        assert c.num_workers == 20
        assert c.cores_per_worker == 1
        assert c.machine.cores == 8
        assert c.machine.memory_bytes == 24 * GB

    def test_total_cores(self):
        assert das4_cluster(20, 4).total_cores == 80

    def test_heap_divided_among_slots(self):
        """Paper: 20 GB heap at 1 task/node, ~3 GB at 7 (Section 3.1)."""
        assert das4_cluster(20, 1).worker_heap_bytes == pytest.approx(20 * GB)
        assert das4_cluster(20, 7).worker_heap_bytes == pytest.approx(20 * GB / 7)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_workers=0)

    def test_cores_bounded_by_machine(self):
        """One core is always left to the OS (paper tests 1..7 of 8)."""
        with pytest.raises(ValueError):
            das4_cluster(20, 8)
        with pytest.raises(ValueError):
            das4_cluster(20, 0)

    def test_with_workers_copy(self):
        c = das4_cluster(20, 3)
        c2 = c.with_workers(45)
        assert c2.num_workers == 45 and c2.cores_per_worker == 3
        assert c.num_workers == 20  # frozen original

    def test_with_cores_copy(self):
        c = das4_cluster(20, 1).with_cores(5)
        assert c.cores_per_worker == 5


class TestHDFS:
    def test_block_count(self):
        h = HDFS(das4_cluster())
        assert h.num_blocks(0.5 * h.block_bytes) == 1
        assert h.num_blocks(2.5 * h.block_bytes) == 3

    def test_ingestion_roughly_linear(self):
        """Paper Table 6: ~1 second per 100 MB."""
        h = HDFS(das4_cluster())
        t1 = h.ingest_seconds(1000 * MB)
        t2 = h.ingest_seconds(2000 * MB)
        assert t2 == pytest.approx(2 * t1, rel=0.2)

    def test_ingestion_rate_near_paper(self):
        """100 MB should take on the order of 1 second."""
        t = HDFS(das4_cluster()).ingest_seconds(100 * MB)
        assert 0.5 <= t <= 3.0

    def test_zero_bytes(self):
        assert HDFS(das4_cluster()).ingest_seconds(0) == 0.0

    def test_parallel_read_scales_with_readers(self):
        h = HDFS(das4_cluster())
        assert h.parallel_read_seconds(10 * GB, 20) == pytest.approx(
            h.parallel_read_seconds(10 * GB, 40) * 2
        )

    def test_parallel_write_uses_write_bandwidth(self):
        h = HDFS(das4_cluster())
        t = h.parallel_write_seconds(1 * GB, 1)
        assert t == pytest.approx(GB / DAS4_MACHINE.disk_write_bps)

    def test_replication_multiplies_write(self):
        c = das4_cluster()
        t1 = HDFS(c, replication=1).parallel_write_seconds(1 * GB, 4)
        t3 = HDFS(c, replication=3).parallel_write_seconds(1 * GB, 4)
        assert t3 == pytest.approx(3 * t1)


class TestResourceTrace:
    def test_interval_recording_and_sampling(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 10.0, cpu=0.5)
        vals = tr.sample("w0", "cpu", np.array([5.0, 15.0]))
        assert vals.tolist() == [0.5, 0.0]

    def test_overlapping_intervals_accumulate(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 10.0, cpu=0.3)
        tr.record("w0", 5.0, 15.0, cpu=0.4)
        assert tr.sample("w0", "cpu", np.array([7.0]))[0] == pytest.approx(0.7)

    def test_memory_step_function(self):
        tr = ResourceTrace()
        tr.set_memory("w0", 0.0, 100.0)
        tr.set_memory("w0", 10.0, 300.0)
        vals = tr.sample("w0", "memory", np.array([5.0, 10.0, 20.0]))
        assert vals.tolist() == [100.0, 300.0, 300.0]

    def test_memory_before_first_event_is_zero(self):
        tr = ResourceTrace()
        tr.set_memory("w0", 5.0, 100.0)
        assert tr.sample("w0", "memory", np.array([1.0]))[0] == 0.0

    def test_series_has_num_points(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 50.0, net_in=1e6)
        assert len(tr.series("w0", "net_in", num_points=100)) == 100

    def test_series_normalizes_over_job_length(self):
        """Two jobs of different lengths produce comparable series."""
        a = ResourceTrace()
        a.record("w0", 0.0, 10.0, cpu=1.0)
        b = ResourceTrace()
        b.record("w0", 0.0, 1000.0, cpu=1.0)
        assert np.allclose(
            a.series("w0", "cpu"), b.series("w0", "cpu")
        )

    def test_unknown_metric(self):
        tr = ResourceTrace()
        with pytest.raises(ValueError):
            tr.sample("w0", "entropy", np.array([0.0]))

    def test_invalid_interval(self):
        tr = ResourceTrace()
        with pytest.raises(ValueError):
            tr.record("w0", 5.0, 1.0, cpu=0.1)

    def test_empty_interval_ignored(self):
        tr = ResourceTrace()
        tr.record("w0", 5.0, 5.0, cpu=0.1)
        assert tr.nodes() == []

    def test_nodes_listing(self):
        tr = ResourceTrace()
        tr.record(MASTER, 0, 1, cpu=0.1)
        tr.set_memory(worker_node(0), 0, 1.0)
        assert tr.nodes() == [MASTER, worker_node(0)]

    def test_peak_and_mean(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 5.0, cpu=1.0)
        tr.record("w0", 5.0, 10.0, cpu=0.0)
        assert tr.peak("w0", "cpu") == pytest.approx(1.0)
        assert tr.mean("w0", "cpu") == pytest.approx(0.5, abs=0.05)

    def test_memory_sampling_matches_scalar_semantics(self):
        """The vectorized searchsorted path reproduces 'last event at
        or before t defines the value' for many events and samples."""
        tr = ResourceTrace()
        rng = np.random.default_rng(7)
        events = sorted(
            (float(t), float(v))
            for t, v in zip(rng.uniform(0, 100, 50), rng.uniform(0, 1e9, 50))
        )
        for t, v in events:
            tr.set_memory("w0", t, v)
        times = np.sort(rng.uniform(-5, 105, 200))
        got = tr.sample("w0", "memory", times)
        for t, g in zip(times, got):
            expected = 0.0
            for et, ev in events:
                if et <= t:
                    expected = ev
            assert g == expected

    def test_memory_same_time_events_take_larger_value(self):
        # Ties sort by (t, value): the larger value wins — the ordering
        # the pre-vectorization sorted() tuples produced.
        tr = ResourceTrace()
        tr.set_memory("w0", 5.0, 300.0)
        tr.set_memory("w0", 5.0, 100.0)
        assert tr.sample("w0", "memory", np.array([6.0]))[0] == 300.0

    def test_attribution_lists_overlapping_records(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 10.0, net_in=100.0, span=7)
        tr.record("w0", 5.0, 15.0, net_in=50.0, span=9)
        contribs = tr.attribution("w0", "net_in", 7.0)
        assert (100.0, 0.0, 10.0, 7) in contribs
        assert (50.0, 5.0, 15.0, 9) in contribs
        assert tr.attribution("w0", "net_in", 20.0) == []

    def test_attribution_memory_returns_defining_event(self):
        tr = ResourceTrace()
        tr.set_memory("w0", 0.0, 100.0, span=3)
        tr.set_memory("w0", 10.0, 200.0, span=4)
        assert tr.attribution("w0", "memory", 5.0) == [(100.0, 0.0, 0.0, 3)]
        assert tr.attribution("w0", "memory", 12.0) == [(200.0, 10.0, 10.0, 4)]

    def test_peak_attribution_finds_heaviest_record(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 100.0, net_in=10.0, span=1)
        tr.record("w0", 40.0, 60.0, net_in=90.0, span=2)
        peak = tr.peak_attribution("w0", "net_in")
        assert 40.0 <= peak["time"] < 60.0
        assert peak["value"] == pytest.approx(100.0)
        # Largest contribution first, each traceable to its span.
        assert peak["contributors"][0][3] == 2
        assert peak["contributors"][1][3] == 1

    def test_records_default_to_untracked_span(self):
        tr = ResourceTrace()
        tr.record("w0", 0.0, 1.0, cpu=0.5)
        assert tr.attribution("w0", "cpu", 0.5) == [(0.5, 0.0, 1.0, None)]


class TestNormalizeSeries:
    def test_length(self):
        assert len(normalize_series(np.arange(7), 100)) == 100

    def test_endpoints_preserved(self):
        out = normalize_series(np.array([3.0, 9.0]), 10)
        assert out[0] == 3.0 and out[-1] == 9.0

    def test_constant_input(self):
        assert np.allclose(normalize_series(np.full(33, 2.5), 50), 2.5)

    def test_single_sample(self):
        assert np.allclose(normalize_series(np.array([4.0]), 10), 4.0)

    def test_empty_input(self):
        assert np.allclose(normalize_series(np.array([]), 10), 0.0)
