"""Tests for STATS (vertex/edge counts + mean LCC)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.stats import StatsProgram, graph_statistics
from repro.graph.builder import from_edges


class TestStatsResult:
    def test_counts(self, tiny_undirected):
        res = graph_statistics(tiny_undirected)
        assert res.num_vertices == 6
        assert res.num_edges == 5

    def test_mean_lcc_matches_networkx(self, random_graph):
        res = graph_statistics(random_graph)
        assert res.mean_lcc == pytest.approx(
            nx.average_clustering(random_graph.to_networkx()), abs=1e-12
        )

    def test_triangle(self):
        g = from_edges(3, np.array([[0, 1], [1, 2], [0, 2]]), directed=False)
        assert graph_statistics(g).mean_lcc == pytest.approx(1.0)


class TestStatsProgram:
    def test_two_supersteps(self, random_graph):
        prog = StatsProgram(random_graph)
        reports = list(prog)
        assert len(reports) == 2
        assert not reports[0].halted and reports[1].halted

    def test_result_before_completion_raises(self, random_graph):
        prog = StatsProgram(random_graph)
        with pytest.raises(RuntimeError):
            prog.result()

    def test_result_matches_reference(self, random_graph):
        prog = StatsProgram(random_graph)
        for _ in prog:
            pass
        assert prog.result() == graph_statistics(random_graph)

    def test_superstep1_messages_are_degree(self, random_graph):
        report = StatsProgram(random_graph).step()
        deg = np.asarray(random_graph.out_degree())
        assert np.array_equal(report.messages, deg)

    def test_superstep1_bytes_are_quadratic(self, random_graph):
        report = StatsProgram(random_graph).step()
        deg = np.asarray(random_graph.out_degree(), dtype=np.int64)
        assert report.quadratic_in_degree
        assert np.array_equal(report.message_bytes, deg * deg * 8)

    def test_received_bytes_exact(self, tiny_directed):
        """received[v] = sum of in-neighbors' out-degrees * 8."""
        report = StatsProgram(tiny_directed).step()
        g = tiny_directed
        expected = np.zeros(6)
        for v in range(6):
            expected[v] = sum(g.out_degree(int(u)) for u in g.in_neighbors(v)) * 8
        assert np.allclose(report.received_bytes, expected)

    def test_total_message_volume_is_sum_deg_squared(self, random_graph):
        report = StatsProgram(random_graph).step()
        deg = np.asarray(random_graph.out_degree(), dtype=np.int64)
        assert report.message_bytes.sum() == (deg * deg).sum() * 8

    def test_run_reference(self, random_graph):
        res = get_algorithm("stats").run_reference(random_graph)
        assert res.iterations == 2
        assert res.coverage == 1.0
        assert res.output.num_edges == random_graph.num_edges

    def test_output_bytes_tiny(self, random_graph):
        """STATS outputs three scalars, not per-vertex data."""
        prog = StatsProgram(random_graph)
        assert prog.output_bytes() < 1000
