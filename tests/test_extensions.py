"""Tests for the extension algorithms (PageRank, SSSP, triangles,
diameter, MIS, sampling)."""

import networkx as nx
import numpy as np
import pytest

import repro.algorithms.extensions as ext
from repro.algorithms.base import get_algorithm
from repro.platforms import get_platform

EXTENSION_NAMES = ("pagerank", "sssp", "triangles", "diameter", "mis", "sampling")


class TestRegistration:
    @pytest.mark.parametrize("name", EXTENSION_NAMES)
    def test_registered(self, name):
        assert get_algorithm(name).name == name

    def test_combinable_flags(self):
        assert get_algorithm("pagerank").combinable
        assert get_algorithm("sssp").combinable
        assert not get_algorithm("triangles").combinable


class TestPageRank:
    def test_matches_networkx(self, random_graph):
        ours = ext.pagerank_vector(random_graph, iterations=60)
        theirs = nx.pagerank(random_graph.to_networkx(), alpha=0.85)
        vec = np.array([theirs[v] for v in range(random_graph.num_vertices)])
        assert np.corrcoef(ours, vec)[0, 1] > 0.999

    def test_sums_to_one(self, random_digraph):
        ours = ext.pagerank_vector(random_digraph, iterations=60)
        assert ours.sum() == pytest.approx(1.0, abs=1e-6)

    def test_program_matches_reference(self, random_graph):
        prog = ext.pagerank.PageRankProgram(random_graph, iterations=15)
        for _ in prog:
            pass
        ref = ext.pagerank_vector(random_graph, iterations=15)
        assert np.allclose(prog.result(), ref)

    def test_converges_early_with_tolerance(self, path_graph):
        prog = ext.pagerank.PageRankProgram(
            path_graph, iterations=500, tolerance=1e-12
        )
        n = sum(1 for _ in prog)
        assert n < 500

    def test_dangling_mass_redistributed(self, tiny_directed):
        ours = ext.pagerank_vector(tiny_directed, iterations=80)
        assert ours.sum() == pytest.approx(1.0, abs=1e-6)


class TestSssp:
    def test_matches_dijkstra(self, random_digraph):
        prog = get_algorithm("sssp").program(random_digraph, source=3)
        for _ in prog:
            pass
        ref = ext.shortest_path_lengths(random_digraph, 3)
        assert np.allclose(prog.result(), ref)

    def test_undirected(self, random_graph):
        prog = get_algorithm("sssp").program(random_graph, source=0)
        for _ in prog:
            pass
        ref = ext.shortest_path_lengths(random_graph, 0)
        assert np.allclose(prog.result(), ref)

    def test_unreached_is_inf(self, tiny_undirected):
        prog = get_algorithm("sssp").program(tiny_undirected, source=0)
        for _ in prog:
            pass
        assert np.isinf(prog.result()[5])

    def test_source_distance_zero(self, random_graph):
        prog = get_algorithm("sssp").program(random_graph, source=7)
        for _ in prog:
            pass
        assert prog.result()[7] == 0.0

    def test_weights_deterministic(self):
        a = ext.sssp.edge_weights(np.array([1, 2]), np.array([3, 4]))
        b = ext.sssp.edge_weights(np.array([1, 2]), np.array([3, 4]))
        assert np.array_equal(a, b)
        assert np.all(a >= 1)

    def test_bad_source(self, path_graph):
        with pytest.raises(ValueError):
            get_algorithm("sssp").program(path_graph, source=99)


class TestTriangles:
    def test_matches_networkx(self, random_graph):
        ours = ext.triangle_count(random_graph)
        theirs = sum(nx.triangles(random_graph.to_networkx()).values()) // 3
        assert ours == theirs

    def test_triangle_graph(self):
        from repro.graph.builder import from_edges

        g = from_edges(3, np.array([[0, 1], [1, 2], [0, 2]]), directed=False)
        assert ext.triangle_count(g) == 1

    def test_triangle_free(self, path_graph):
        assert ext.triangle_count(path_graph) == 0

    def test_program_two_supersteps(self, random_graph):
        prog = get_algorithm("triangles").program(random_graph)
        reports = list(prog)
        assert len(reports) == 2
        assert prog.result() == ext.triangle_count(random_graph)

    def test_messages_lighter_than_stats(self, random_graph):
        tri = get_algorithm("triangles").run_reference(random_graph)
        stats = get_algorithm("stats").run_reference(random_graph)
        assert tri.total_message_bytes < stats.total_message_bytes


class TestDiameter:
    def test_path_graph_exact(self, path_graph):
        assert ext.estimate_diameter(path_graph, seed_vertex=4) == 9

    def test_lower_bound_property(self, random_graph):
        est = ext.estimate_diameter(random_graph, seed_vertex=0)
        nxg = random_graph.to_networkx()
        biggest = max(nx.connected_components(nxg), key=len)
        true = nx.diameter(nxg.subgraph(biggest))
        assert est <= true
        assert est >= max(true // 2, 1)  # double sweep is at least half

    def test_program_result_matches_reference(self, random_graph):
        prog = get_algorithm("diameter").program(random_graph, seed_vertex=0)
        for _ in prog:
            pass
        assert prog.result() == ext.estimate_diameter(random_graph, seed_vertex=0)

    def test_program_runs_two_sweeps(self, path_graph):
        prog = get_algorithm("diameter").program(path_graph, seed_vertex=0)
        n = sum(1 for _ in prog)
        # two BFS sweeps back to back
        assert n >= 12


class TestMis:
    def test_independence(self, random_graph):
        mis = ext.maximal_independent_set(random_graph)
        for u, v in random_graph.to_networkx().edges():
            assert not (mis[u] and mis[v])

    def test_maximality(self, random_graph):
        mis = ext.maximal_independent_set(random_graph)
        for v in range(random_graph.num_vertices):
            if not mis[v]:
                nbrs = random_graph.neighbors(v)
                assert len(nbrs) == 0 or mis[nbrs].any()

    def test_isolated_vertices_in_set(self, tiny_undirected):
        mis = ext.maximal_independent_set(tiny_undirected)
        assert mis[5]

    def test_deterministic(self, random_graph):
        a = ext.maximal_independent_set(random_graph, seed=3)
        b = ext.maximal_independent_set(random_graph, seed=3)
        assert np.array_equal(a, b)

    def test_directed_uses_skeleton(self, random_digraph):
        mis = ext.maximal_independent_set(random_digraph)
        und = random_digraph.as_undirected()
        for u, v in und.to_networkx().edges():
            assert not (mis[u] and mis[v])

    def test_few_rounds(self, random_graph):
        prog = get_algorithm("mis").program(random_graph)
        n = sum(1 for _ in prog)
        assert n <= 20  # Luby: expected O(log n)


class TestSampling:
    def test_visited_set_reasonable(self, random_graph):
        s = ext.random_walk_sample(random_graph, num_walkers=32, steps=15)
        assert 32 <= int(s.sum()) <= random_graph.num_vertices

    def test_deterministic(self, random_graph):
        a = ext.random_walk_sample(random_graph, seed=5)
        b = ext.random_walk_sample(random_graph, seed=5)
        assert np.array_equal(a, b)

    def test_fixed_step_count(self, random_graph):
        prog = get_algorithm("sampling").program(random_graph, steps=7)
        assert sum(1 for _ in prog) == 7

    def test_empty_graph_rejected(self):
        from repro.graph.builder import empty_graph

        with pytest.raises(ValueError):
            get_algorithm("sampling").program(empty_graph(0, directed=False))


@pytest.mark.parametrize("name", EXTENSION_NAMES)
@pytest.mark.parametrize("platform", ["hadoop", "stratosphere", "giraph", "neo4j"])
class TestOnPlatforms:
    def test_runs_and_times_positive(self, name, platform, random_graph,
                                     small_cluster):
        r = get_platform(platform).run(name, random_graph, small_cluster)
        assert r.execution_time > 0
        assert r.supersteps >= 1
