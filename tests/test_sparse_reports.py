"""Sparse (frontier-indexed) vs dense report equivalence.

The contract of the sparse workload representation is *bit identity*:
whichever form an algorithm emits, every platform must charge exactly
the same ``WorkerStepCosts`` and produce exactly the same
``JobResult``.  The property tests here force the dense path (via the
process-wide threshold), re-run the same program sparsely, and compare
both levels on random graphs for every platform x algorithm pair.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.base import (
    SuperstepReport,
    frontier_report,
    get_algorithm,
    record_trace,
    set_sparse_active_fraction,
    sparse_active_fraction,
)
from repro.cluster.spec import das4_cluster
from repro.graph.builder import from_edges
from repro.graph.partition import hash_partition
from repro.platforms.base import PartitionContext
from repro.platforms.registry import PLATFORM_NAMES, get_platform
from repro.platforms.scale import ScaleModel

ALGORITHMS = (
    "bfs", "stats", "conn", "cd", "evo",
    "sssp", "mis", "sampling", "diameter", "pagerank",
)


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=90):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    directed = draw(st.booleans())
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2), directed


def _force_dense(fn):
    """Run ``fn`` with the sparse representation disabled."""
    prev = set_sparse_active_fraction(-1.0)
    try:
        return fn()
    finally:
        set_sparse_active_fraction(prev)


def _outputs_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return isinstance(b, np.ndarray) and np.array_equal(a, b)
    if isinstance(a, list):
        return a == b
    return a == b


# -- the tentpole property: platform x algorithm equivalence ------------------


@pytest.mark.parametrize("algo_name", ALGORITHMS)
@given(spec=edge_lists())
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sparse_dense_equivalence(algo_name, spec):
    n, edges, directed = spec
    g = from_edges(n, edges, directed=directed, name="hyp")
    algo = get_algorithm(algo_name)
    params = algo.default_params(g)

    dense_trace = _force_dense(
        lambda: record_trace(algo.program(g, **params), g, algorithm=algo_name)
    )
    sparse_trace = record_trace(
        algo.program(g, **params), g, algorithm=algo_name
    )

    # Identical step-by-step WorkerStepCosts through one context.
    ctx = PartitionContext(g, hash_partition(g, 4), ScaleModel())
    assert dense_trace.num_supersteps == sparse_trace.num_supersteps
    for d_rep, s_rep in zip(dense_trace.reports, sparse_trace.reports):
        dc = ctx.step_costs(d_rep)
        sc = ctx.step_costs(s_rep)
        assert np.array_equal(dc.compute_edges, sc.compute_edges)
        assert np.array_equal(dc.messages, sc.messages)
        assert np.array_equal(dc.sent_bytes, sc.sent_bytes)
        assert np.array_equal(dc.remote_sent_bytes, sc.remote_sent_bytes)
        assert np.array_equal(dc.received_bytes, sc.received_bytes)

    # Identical trace-level aggregates and algorithm outputs.
    assert dense_trace.coverage == sparse_trace.coverage
    assert dense_trace.total_compute_edges == sparse_trace.total_compute_edges
    assert dense_trace.total_messages == sparse_trace.total_messages
    assert dense_trace.total_message_bytes == sparse_trace.total_message_bytes
    assert _outputs_equal(dense_trace.output, sparse_trace.output)

    # Identical JobResults from every platform model.
    cluster = das4_cluster()
    for name in PLATFORM_NAMES:
        dense = _force_dense(
            lambda: get_platform(name).run(algo_name, g, cluster, **params)
        )
        sparse = get_platform(name).run(algo_name, g, cluster, **params)
        assert dense.execution_time == sparse.execution_time, name
        assert dense.breakdown == sparse.breakdown, name
        assert dense.supersteps == sparse.supersteps, name


# -- report-form mechanics ----------------------------------------------------


class TestFrontierReport:
    def test_small_frontier_stays_sparse(self):
        rep = frontier_report(
            100, np.array([3, 7]), compute_edges=np.array([2.0, 5.0]),
            messages=np.array([2.0, 5.0]),
        )
        assert rep.is_sparse
        assert rep.num_active(100) == 2
        assert rep.active_vertex_ids(100).tolist() == [3, 7]
        assert rep.total_compute_edges() == 7

    def test_large_frontier_densifies(self):
        ids = np.arange(90)
        vals = np.ones(90)
        rep = frontier_report(100, ids, compute_edges=vals, messages=vals)
        assert not rep.is_sparse
        assert rep.active is not None
        assert rep.num_active(100) == 90

    def test_unsorted_ids_are_normalized(self):
        rep = frontier_report(
            100, np.array([7, 3]), compute_edges=np.array([70.0, 30.0]),
            messages=np.array([7.0, 3.0]),
        )
        assert rep.active_ids.tolist() == [3, 7]
        assert rep.compute_edges.tolist() == [30.0, 70.0]
        assert rep.messages.tolist() == [3.0, 7.0]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            frontier_report(
                100, np.array([3, 3]), compute_edges=np.zeros(2),
                messages=np.zeros(2),
            )

    def test_to_dense_roundtrip(self):
        rep = frontier_report(
            10, np.array([1, 4]), compute_edges=np.array([2.0, 3.0]),
            messages=np.array([1.0, 1.0]),
        )
        dense = rep.to_dense(10)
        assert not dense.is_sparse
        assert dense.compute_edges.tolist() == [
            0, 2.0, 0, 0, 3.0, 0, 0, 0, 0, 0,
        ]
        back = dense.compacted(10)
        assert back.is_sparse
        assert back.active_ids.tolist() == [1, 4]

    def test_compacted_refuses_off_frontier_workload(self):
        # Workload outside the active mask cannot be represented
        # sparsely without changing charges -> must stay dense.
        active = np.zeros(10, dtype=bool)
        active[2] = True
        compute = np.zeros(10)
        compute[5] = 4.0  # charged to an inactive vertex
        rep = SuperstepReport(
            active=active, compute_edges=compute, messages=np.zeros(10)
        )
        assert rep.compacted(10) is rep

    def test_threshold_toggle_is_scoped(self):
        prev = set_sparse_active_fraction(-1.0)
        try:
            rep = frontier_report(
                100, np.array([3]), compute_edges=np.ones(1),
                messages=np.ones(1),
            )
            assert not rep.is_sparse
        finally:
            set_sparse_active_fraction(prev)
        assert sparse_active_fraction() == prev


# -- partition-context kernels ------------------------------------------------


class TestStepMemoLru:
    def _context(self, limit=4):
        g = from_edges(
            8, np.array([[i, (i + 1) % 8] for i in range(8)]), directed=False
        )
        ctx = PartitionContext(g, hash_partition(g, 2), ScaleModel())
        ctx._step_memo_limit = limit
        return g, ctx

    def _pinned(self, g, i):
        rep = frontier_report(
            g.num_vertices, np.array([i]), compute_edges=np.ones(1),
            messages=np.ones(1),
        )
        object.__setattr__(rep, "_trace_pinned", True)
        return rep

    def test_eviction_keeps_memoizing_past_cap(self):
        g, ctx = self._context(limit=4)
        reports = [self._pinned(g, i) for i in range(8)]
        for rep in reports:
            ctx.step_costs(rep)
        stats = ctx.memo_stats()
        assert stats["step_memo_entries"] == 4  # capped, not unbounded
        assert stats["step_memo_misses"] == 8
        # Newest entries survive; re-charging them hits.
        for rep in reports[4:]:
            ctx.step_costs(rep)
        assert ctx.memo_stats()["step_memo_hits"] == 4

    def test_lru_hit_refreshes_recency(self):
        g, ctx = self._context(limit=2)
        a, b, c = (self._pinned(g, i) for i in range(3))
        ctx.step_costs(a)
        ctx.step_costs(b)
        ctx.step_costs(a)  # refresh a -> b is now the oldest
        ctx.step_costs(c)  # evicts b
        hits0 = ctx.memo_stats()["step_memo_hits"]
        ctx.step_costs(a)
        assert ctx.memo_stats()["step_memo_hits"] == hits0 + 1
        ctx.step_costs(b)  # miss: was evicted
        assert ctx.memo_stats()["step_memo_hits"] == hits0 + 1


def test_context_memo_stats_aggregates():
    from repro.platforms.registry import context_memo_stats

    stats = context_memo_stats()
    assert set(stats) == {
        "contexts", "step_memo_entries", "step_memo_hits", "step_memo_misses",
    }


def test_trace_cache_reports_pinned_bytes():
    from repro.core.runner import Runner
    from repro.core.spec import RunSpec

    runner = Runner()
    runner.run(RunSpec("giraph", "bfs", "kgs"))
    stats = runner.cache_stats()
    assert stats["trace_bytes"] > 0
    assert stats["entries"] == 1
    assert "step_memo_hits" in stats


def test_degree_arrays_are_cached_and_frozen():
    g = from_edges(
        6, np.array([[0, 1], [1, 2], [2, 3]]), directed=True
    )
    out1 = g.out_degree()
    assert g.out_degree() is out1  # same object, computed once
    assert not out1.flags.writeable
    assert g.degree() is g.degree()
    with pytest.raises(ValueError):
        out1[0] = 99
