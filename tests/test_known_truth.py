"""Known-truth recovery-semantics regression net.

The chaos-sweep frontier numbers (``repro.core.chaos``) are only
trustworthy if the per-platform recovery models provably implement the
semantics they claim.  This suite drives the **real** recovery code
(:meth:`Platform._recover_whole_job`,
:meth:`MapReduceEngine._retry_crashed_tasks`,
:meth:`Giraph._recover_crashes`) against synthetic scenarios whose
outcomes are derivable in closed form, hypothesis-sweeping the crash
fraction ``f``, crash count ``k``, checkpoint interval ``c``, and plan
seeds.  Every analytic comparison must hold to ``REL_TOL`` (1e-9)
relative error; most hold exactly because the twins mirror the float
operation order.

Closed forms under test (``s`` = step seconds, ``R`` = restart
latency, ``T`` = fault-free makespan):

* whole-job restart, one crash at ``a``: detected at ``k*s`` with
  ``k = floor(a/s) + 1``; ``extra = R + k*s``;
* whole-job restart, ``k`` crashes in the first step: windows compound
  as ``t_k = 2^k * s + (2^k - 1) * R`` (the doubling law);
* per-task retry, ``k`` early crashes:
  ``E_k = a^k * E_0 - (S - L*w) * (a^k - 1)`` with ``a = 1 + 1/w``;
* checkpoint-restart, crash detected at step ``k`` with interval
  ``c``: ``lost = (k mod c) * s <= c*s``, ``extra = R + lost``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.faults import FaultPlan
from repro.des.known_truth import (
    REL_TOL,
    ScenarioCheck,
    UniformJob,
    closed_form_task_retry,
    crash_plan,
    expected_checkpoint_restart,
    expected_task_retry,
    expected_whole_job_restart,
    run_checkpoint_restart,
    run_task_retry,
    run_whole_job_restart,
    verify_recovery_semantics,
)
from repro.platforms.giraph import Giraph
from repro.platforms.graphlab import GraphLab
from repro.platforms.hadoop import Hadoop
from repro.platforms.neo4j import Neo4j
from repro.platforms.stratosphere import Stratosphere
from repro.platforms.yarn import Yarn

#: the synthetic uniform workload: 8 steps of 25 simulated seconds
JOB = UniformJob(steps=8, step_seconds=25.0)

WHOLE_JOB_PLATFORMS = [GraphLab, Stratosphere, Neo4j]
RETRY_ENGINES = [Hadoop, Yarn]


def _assert_outcomes_match(actual, expected):
    """Field-by-field comparison at the net's relative tolerance.

    A crashed job has no makespan (the driver observes the clock at
    the last completed step, not mid-recovery), so crashed outcomes
    compare recovery charges and counters only.
    """
    assert actual.crashed == expected.crashed
    quantities = (
        ("recovery_seconds",)
        if actual.crashed
        else ("makespan", "recovery_seconds")
    )
    for quantity in quantities:
        check = ScenarioCheck(
            "test", "test", quantity,
            getattr(expected, quantity), getattr(actual, quantity),
        )
        assert check.ok, (
            f"{quantity}: expected {check.expected!r}, got "
            f"{check.actual!r} (rel error {check.rel_error:.2e})"
        )
    assert actual.job_restarts == expected.job_restarts
    assert actual.task_retries == expected.task_retries


# -- whole-job restart (GraphLab / Stratosphere / Neo4j) ---------------------

crash_fractions = st.floats(
    min_value=0.01, max_value=0.95, allow_nan=False, allow_infinity=False
)


@pytest.mark.parametrize("cls", WHOLE_JOB_PLATFORMS)
class TestWholeJobRestart:
    @given(f=crash_fractions)
    @settings(max_examples=40, deadline=None)
    def test_single_crash_matches_analytic_twin(self, cls, f):
        platform = cls()
        plan = crash_plan([f * JOB.total])
        actual = run_whole_job_restart(platform, plan, JOB)
        expected = expected_whole_job_restart(
            plan, JOB,
            restart_seconds=platform.restart_seconds,
            max_restarts=platform.max_job_restarts,
        )
        assert not actual.crashed
        _assert_outcomes_match(actual, expected)

    def test_single_crash_closed_form(self, cls):
        """extra = R + k*s with k = floor(a/s) + 1 (detection at the
        end of the step in flight)."""
        platform = cls()
        s = JOB.step_seconds
        a = 2.5 * s  # mid-step crash, detected at k = 3
        actual = run_whole_job_restart(platform, crash_plan([a]), JOB)
        extra = platform.restart_seconds + 3 * s
        assert actual.makespan == JOB.total + extra
        assert actual.recovery_seconds == extra
        assert actual.job_restarts == 1

    @given(f=crash_fractions, extra=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_budget_exhaustion_crashes_both_sides(self, cls, f, extra):
        """One crash more than the restart budget kills the job — in
        the real model and the analytic twin alike."""
        platform = cls()
        budget = platform.max_job_restarts
        times = [f * JOB.step_seconds + i * 1e-4 for i in range(budget + extra)]
        plan = crash_plan(times)
        actual = run_whole_job_restart(platform, plan, JOB)
        expected = expected_whole_job_restart(
            plan, JOB,
            restart_seconds=platform.restart_seconds,
            max_restarts=budget,
        )
        assert actual.crashed and expected.crashed
        assert "restart budget exhausted" in actual.failure
        assert actual.job_restarts == expected.job_restarts == budget
        _assert_outcomes_match(actual, expected)


class _DurableGraphLab(GraphLab):
    """GraphLab with a deep restart budget — isolates the doubling law
    from budget exhaustion."""

    max_job_restarts = 64


class TestDoublingLaw:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=24.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_first_window_crashes_compound_geometrically(self, times):
        """k crashes landing in the first step window cost
        t_k = 2^k * s + (2^k - 1) * R: each restart re-pays all
        simulated work so far, so the elapsed clock doubles per crash.
        """
        job = UniformJob(steps=1, step_seconds=25.0)
        platform = _DurableGraphLab()
        actual = run_whole_job_restart(platform, crash_plan(times), job)
        assert not actual.crashed
        k = len(times)
        s, R = job.step_seconds, platform.restart_seconds
        want = 2.0**k * s + (2.0**k - 1.0) * R
        assert math.isclose(actual.makespan, want, rel_tol=REL_TOL)
        assert actual.job_restarts == k
        # and the iterated analytic twin agrees exactly
        expected = expected_whole_job_restart(
            crash_plan(times), job,
            restart_seconds=R, max_restarts=platform.max_job_restarts,
        )
        _assert_outcomes_match(actual, expected)


# -- per-task retry (Hadoop / YARN) ------------------------------------------


@pytest.mark.parametrize("cls", RETRY_ENGINES)
class TestTaskRetry:
    @given(
        fractions=st.lists(
            st.floats(min_value=0.01, max_value=0.95,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=4,
        ),
        nodes=st.sampled_from([5, 20, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_retry_recurrence_matches_analytic_twin(
        self, cls, fractions, nodes
    ):
        engine = cls()
        wall = engine.job_startup_seconds + JOB.total
        plan = crash_plan([f * wall for f in fractions])
        actual = run_task_retry(engine, plan, JOB, nodes=nodes)
        expected = expected_task_retry(
            plan, JOB,
            startup=engine.job_startup_seconds,
            nodes=nodes,
            retry_launch_seconds=engine.retry_launch_seconds,
            max_task_retries=engine.max_task_retries,
        )
        assert not actual.crashed
        _assert_outcomes_match(actual, expected)

    @given(k=st.integers(1, 4), nodes=st.sampled_from([5, 20, 64]))
    @settings(max_examples=30, deadline=None)
    def test_early_crashes_match_closed_form(self, cls, k, nodes):
        """k crashes all landing before the nominal job completes obey
        E_k = a^k * E_0 - (S - L*w)(a^k - 1) with a = 1 + 1/w."""
        engine = cls()
        base = engine.job_startup_seconds + JOB.total
        plan = crash_plan([(i + 1.0) for i in range(k)])  # all early
        actual = run_task_retry(engine, plan, JOB, nodes=nodes)
        want = closed_form_task_retry(
            k,
            base=base,
            startup=engine.job_startup_seconds,
            nodes=nodes,
            retry_launch_seconds=engine.retry_launch_seconds,
        )
        assert actual.task_retries == k
        assert math.isclose(actual.makespan, want, rel_tol=REL_TOL)
        assert math.isclose(
            actual.recovery_seconds, want - base,
            rel_tol=REL_TOL, abs_tol=1e-12,
        )

    def test_budget_exhaustion_crashes_both_sides(self, cls):
        engine = cls()
        budget = engine.max_task_retries
        plan = crash_plan([1.0 + i for i in range(budget + 1)])
        actual = run_task_retry(engine, plan, JOB, nodes=20)
        expected = expected_task_retry(
            plan, JOB,
            startup=engine.job_startup_seconds,
            nodes=20,
            retry_launch_seconds=engine.retry_launch_seconds,
            max_task_retries=budget,
        )
        assert actual.crashed and expected.crashed
        assert "retry budget exhausted" in actual.failure
        assert actual.task_retries == expected.task_retries == budget
        _assert_outcomes_match(actual, expected)

    def test_late_crash_outside_window_is_ignored(self, cls):
        engine = cls()
        wall = engine.job_startup_seconds + JOB.total
        plan = crash_plan([wall * 10.0])
        actual = run_task_retry(engine, plan, JOB, nodes=20)
        assert actual.task_retries == 0
        assert actual.makespan == wall
        assert actual.recovery_seconds == 0.0


# -- checkpoint-restart (Giraph) ---------------------------------------------


class TestCheckpointRestart:
    @given(
        c=st.integers(1, 8),
        k=st.integers(1, JOB.steps),
        offset=st.floats(min_value=0.05, max_value=0.95,
                         allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_lost_work_is_k_mod_c_steps(self, c, k, offset):
        """A crash inside step k re-pays R plus exactly the work since
        the last checkpoint barrier: (k mod c) * s."""
        giraph = Giraph(checkpoint_interval=c)
        s = JOB.step_seconds
        plan = crash_plan([(k - 1 + offset) * s])
        actual = run_checkpoint_restart(giraph, plan, JOB)
        expected = expected_checkpoint_restart(
            plan, JOB, interval=c, restart_seconds=giraph.restart_seconds
        )
        assert not actual.crashed
        _assert_outcomes_match(actual, expected)
        lost = (k % c) * s
        extra = giraph.restart_seconds + lost
        assert math.isclose(actual.recovery_seconds, extra, rel_tol=REL_TOL)
        assert actual.makespan == pytest.approx(
            JOB.total + extra, rel=REL_TOL
        )

    @given(c=st.integers(1, 8), f=crash_fractions)
    @settings(max_examples=40, deadline=None)
    def test_lost_work_bounded_by_interval(self, c, f):
        """The checkpoint contract: lost work never exceeds c * s."""
        giraph = Giraph(checkpoint_interval=c)
        actual = run_checkpoint_restart(
            giraph, crash_plan([f * JOB.total]), JOB
        )
        assert not actual.crashed
        bound = giraph.restart_seconds + c * JOB.step_seconds
        assert actual.recovery_seconds <= bound + 1e-9

    @given(f=crash_fractions)
    @settings(max_examples=20, deadline=None)
    def test_checkpointing_off_aborts_both_sides(self, f):
        """interval = 0 (the Giraph 0.2 default): the first detected
        crash kills the job in model and twin alike."""
        giraph = Giraph(checkpoint_interval=0)
        plan = crash_plan([f * JOB.total])
        actual = run_checkpoint_restart(giraph, plan, JOB)
        expected = expected_checkpoint_restart(
            plan, JOB, interval=0, restart_seconds=giraph.restart_seconds
        )
        assert actual.crashed and expected.crashed
        assert "checkpointing is off" in actual.failure
        assert actual.recovery_seconds == expected.recovery_seconds == 0.0


# -- seeded plans: the net holds for arbitrary crash schedules ----------------


class TestSeededPlans:
    @given(seed=st.integers(0, 2**31), num=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_seeded_crash_schedules_match_twins(self, seed, num):
        """Drive seeded (reproducible-random) crash schedules through
        all three recovery families; the analytic twins must track the
        real models across the whole seed space."""
        from repro.des.faults import FaultKind

        plan = FaultPlan.seeded(
            seed, JOB.total, num_faults=num,
            kinds=[FaultKind.NODE_CRASH], num_nodes=4,
        )
        durable = _DurableGraphLab()
        _assert_outcomes_match(
            run_whole_job_restart(durable, plan, JOB),
            expected_whole_job_restart(
                plan, JOB,
                restart_seconds=durable.restart_seconds,
                max_restarts=durable.max_job_restarts,
            ),
        )
        giraph = Giraph(checkpoint_interval=2)
        _assert_outcomes_match(
            run_checkpoint_restart(giraph, plan, JOB),
            expected_checkpoint_restart(
                plan, JOB, interval=2,
                restart_seconds=giraph.restart_seconds,
            ),
        )
        hadoop = Hadoop()
        _assert_outcomes_match(
            run_task_retry(hadoop, plan, JOB, nodes=20),
            expected_task_retry(
                plan, JOB,
                startup=hadoop.job_startup_seconds,
                nodes=20,
                retry_launch_seconds=hadoop.retry_launch_seconds,
                max_task_retries=hadoop.max_task_retries,
            ),
        )


# -- the packaged self-test and its plumbing ----------------------------------


class TestVerifyRecoverySemantics:
    def test_every_scenario_holds_at_tolerance(self):
        checks = verify_recovery_semantics()
        assert len(checks) == 12  # 6 platforms x {makespan, recovery}
        for check in checks:
            assert check.ok, (
                f"{check.scenario}/{check.platform}/{check.quantity}: "
                f"rel error {check.rel_error:.2e} > {REL_TOL:g}"
            )
        platforms = {c.platform for c in checks}
        assert platforms == {
            "graphlab", "stratosphere", "neo4j", "hadoop", "yarn", "giraph"
        }

    def test_scenario_check_rel_error(self):
        exact = ScenarioCheck("s", "p", "makespan", 100.0, 100.0)
        assert exact.rel_error == 0.0 and exact.ok
        off = ScenarioCheck("s", "p", "makespan", 100.0, 101.0)
        assert off.rel_error == pytest.approx(1.0 / 101.0)
        assert not off.ok
        both_zero = ScenarioCheck("s", "p", "recovery_seconds", 0.0, 0.0)
        assert both_zero.ok

    def test_selftest_cli_surface(self, capsys):
        from repro.cli import main

        assert main(["chaos-sweep", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "known-truth recovery semantics" in out
        assert "12/12 checks passed" in out
        assert "FAIL" not in out

    def test_uniform_job_validation(self):
        assert UniformJob(4, 2.5).total == 10.0
        with pytest.raises(ValueError):
            UniformJob(0, 1.0)
        with pytest.raises(ValueError):
            UniformJob(1, 0.0)

    def test_crash_plan_builder(self):
        plan = crash_plan([9.0, 1.0], node=3)
        assert [f.at for f in plan] == [1.0, 9.0]  # time-sorted
        assert all(f.node == 3 for f in plan)


# -- acceptance: the empty plan stays the identity per platform ---------------


class TestEmptyPlanIdentity:
    @pytest.mark.parametrize(
        "platform",
        ["hadoop", "yarn", "giraph", "graphlab", "stratosphere", "neo4j"],
    )
    def test_empty_plan_record_bit_identical_to_no_plan(self, platform):
        """Runner-level: fault_plan=empty must produce the same record
        (and reuse the same trace-cache entry) as fault_plan=None."""
        from repro.core.runner import Runner
        from repro.core.spec import RunSpec
        from tests.test_spec_sweep import records_equal

        runner = Runner(jitter=0.02, repetitions=2)
        plain = runner.run(RunSpec(platform, "bfs", "amazon"))
        misses = runner.trace_cache.misses
        empty = runner.run(
            RunSpec(platform, "bfs", "amazon", fault_plan=FaultPlan.empty())
        )
        assert records_equal(plain, empty)
        assert runner.trace_cache.misses == misses  # shared cache entry
