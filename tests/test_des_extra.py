"""Additional DES kernel scenarios: idle gaps, partial runs,
interleaved resources and links."""

import pytest

from repro.des import Link, Resource, Simulator


class TestPartialRuns:
    def test_run_until_time_then_continue(self):
        sim = Simulator()
        fired = []
        for d in (1.0, 2.0, 3.0):
            sim.timeout(d).add_callback(lambda ev, d=d: fired.append(d))
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_clock_lands_exactly_on_horizon(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.5)
        assert sim.now == 4.5

    def test_step_returns_new_time(self):
        sim = Simulator()
        sim.timeout(2.5)
        assert sim.step() == 2.5


class TestLinkIdleGaps:
    def test_transfer_after_idle_period(self):
        """A link must not 'bank' idle bandwidth from quiet periods."""
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        done1 = link.transfer(100.0)
        sim.run(until=done1)
        assert sim.now == pytest.approx(1.0)
        sim.run(until=50.0)  # long idle gap
        done2 = link.transfer(100.0)
        sim.run(until=done2)
        assert sim.now == pytest.approx(51.0)

    def test_three_way_sharing(self):
        sim = Simulator()
        link = Link(sim, bandwidth=90.0)
        transfers = [link.transfer(90.0) for _ in range(3)]
        sim.run(until=sim.all_of(transfers))
        assert sim.now == pytest.approx(3.0)  # 30 B/s each

    def test_link_inside_process_pipeline(self):
        """Two pipeline stages (disk then NIC) chained in a process."""
        sim = Simulator()
        disk = Link(sim, bandwidth=100.0)
        nic = Link(sim, bandwidth=50.0)

        def move(nbytes):
            yield disk.transfer(nbytes)
            yield nic.transfer(nbytes)

        proc = sim.process(move(100.0))
        sim.run(until=proc)
        assert sim.now == pytest.approx(1.0 + 2.0)


class TestResourceArrivalPatterns:
    def test_staggered_arrivals_fill_slots(self):
        sim = Simulator()
        pool = Resource(sim, capacity=2)
        finish = {}

        def job(name, arrive, work):
            yield sim.timeout(arrive)
            with pool.request() as req:
                yield req
                yield sim.timeout(work)
                finish[name] = sim.now

        sim.process(job("a", 0.0, 4.0))
        sim.process(job("b", 0.0, 1.0))
        sim.process(job("c", 0.5, 1.0))  # waits until b releases at 1.0
        sim.run()
        assert finish == {"b": 1.0, "c": 2.0, "a": 4.0}

    def test_resource_and_link_composition(self):
        """Workers grab a CPU slot, then stream through a shared link —
        the HDFS-ingestion shape."""
        sim = Simulator()
        cpu = Resource(sim, capacity=1)
        net = Link(sim, bandwidth=10.0)
        done = []

        def worker():
            with cpu.request() as req:
                yield req
                yield sim.timeout(1.0)  # compute
            yield net.transfer(10.0)  # then ship (no slot held)
            done.append(sim.now)

        for _ in range(2):
            sim.process(worker())
        sim.run()
        # compute serialized (1 s each); transfers overlap on the link
        assert len(done) == 2
        assert max(done) <= 4.0 + 1e-9


class TestDeterminism:
    def test_identical_runs_identical_timelines(self):
        def build():
            sim = Simulator()
            log = []
            pool = Resource(sim, capacity=2)
            link = Link(sim, bandwidth=7.0)

            def job(i):
                with pool.request() as req:
                    yield req
                    yield sim.timeout(0.1 * (i % 3) + 0.05)
                yield link.transfer(3.0 + i)
                log.append((i, round(sim.now, 9)))

            for i in range(6):
                sim.process(job(i))
            sim.run()
            return log

        assert build() == build()
