"""Tests for DES resources: Resource, Container, Link."""

import pytest

from repro.des import Container, Link, Resource, Simulator


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_immediate_grant_under_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_queueing_over_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_length == 1
        res.release(r1)
        assert r2.triggered
        assert res.queue_length == 0

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        waiting = [res.request() for _ in range(3)]
        res.release(first)
        assert waiting[0].triggered
        assert not waiting[1].triggered

    def test_cancel_queued_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        assert res.queue_length == 0
        res.release(r1)
        assert not r2.triggered  # was cancelled, never granted

    def test_double_release_idempotent(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r = res.request()
        res.release(r)
        res.release(r)  # no error
        assert res.in_use == 0

    def test_context_manager_in_process(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(name, work):
            with res.request() as req:
                yield req
                yield sim.timeout(work)
                log.append((name, sim.now))

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        # b waits for a: a finishes at 2, b at 3
        assert log == [("a", 2.0), ("b", 3.0)]

    def test_task_wave_makespan(self):
        """N equal tasks over k slots take ceil(N/k) waves."""
        sim = Simulator()
        res = Resource(sim, capacity=3)

        def task():
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)

        procs = [sim.process(task()) for _ in range(10)]
        sim.run(until=sim.all_of(procs))
        assert sim.now == pytest.approx(4.0)  # ceil(10/3) = 4 waves


class TestContainer:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Container(sim, capacity=0)
        with pytest.raises(ValueError):
            Container(sim, capacity=10, init=11)

    def test_put_then_get(self):
        sim = Simulator()
        c = Container(sim, capacity=100, init=0)
        c.put(30)
        ev = c.get(20)
        assert ev.triggered
        assert c.level == pytest.approx(10)

    def test_get_blocks_until_put(self):
        sim = Simulator()
        c = Container(sim, capacity=100)
        ev = c.get(50)
        assert not ev.triggered
        c.put(49)
        assert not ev.triggered
        c.put(1)
        assert ev.triggered

    def test_overflow_rejected(self):
        sim = Simulator()
        c = Container(sim, capacity=10, init=5)
        with pytest.raises(ValueError):
            c.put(6)

    def test_get_more_than_capacity_rejected(self):
        sim = Simulator()
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.get(11)

    def test_fifo_getter_order(self):
        sim = Simulator()
        c = Container(sim, capacity=100)
        a = c.get(10)
        b = c.get(5)
        c.put(5)  # not enough for a; b must still wait (FIFO)
        assert not a.triggered and not b.triggered
        c.put(5)
        assert a.triggered  # a takes all 10; b keeps waiting
        assert not b.triggered
        c.put(5)
        assert b.triggered


class TestLink:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth=0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth=1, latency=-1)

    def test_single_transfer_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        done = link.transfer(500.0)
        sim.run(until=done)
        assert sim.now == pytest.approx(5.0)

    def test_zero_bytes_completes_immediately(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        assert link.transfer(0).triggered

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth=1.0).transfer(-1)

    def test_fair_sharing_two_equal_transfers(self):
        """Two simultaneous equal transfers each get half the rate."""
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        d1 = link.transfer(500.0)
        d2 = link.transfer(500.0)
        sim.run(until=sim.all_of([d1, d2]))
        assert sim.now == pytest.approx(10.0)

    def test_short_transfer_finishes_first(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        finish = {}
        long = link.transfer(900.0)
        short = link.transfer(100.0)
        short.add_callback(lambda ev: finish.setdefault("short", sim.now))
        long.add_callback(lambda ev: finish.setdefault("long", sim.now))
        sim.run()
        # Shared until short done at t=2 (each at 50 B/s -> 100 B);
        # long then has 800 left at full rate: 2 + 8 = 10.
        assert finish["short"] == pytest.approx(2.0)
        assert finish["long"] == pytest.approx(10.0)

    def test_latency_added_before_bytes(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, latency=1.0)
        done = link.transfer(100.0)
        sim.run(until=done)
        assert sim.now == pytest.approx(2.0)

    def test_bytes_delivered_accounting(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        link.transfer(300.0)
        link.transfer(200.0)
        sim.run()
        assert link.bytes_delivered == pytest.approx(500.0)

    def test_staggered_arrivals(self):
        """A transfer arriving mid-flight slows the first one down."""
        sim = Simulator()
        link = Link(sim, bandwidth=100.0)
        finish = {}
        first = link.transfer(1000.0)
        first.add_callback(lambda ev: finish.setdefault("first", sim.now))

        def late():
            yield sim.timeout(5.0)
            done = link.transfer(250.0)
            yield done
            finish["second"] = sim.now

        sim.process(late())
        sim.run()
        # First runs alone 0-5 (500 B done), then shares: both at 50 B/s.
        # Second needs 5 s (250 B); first needs 10 s more (500 B).
        assert finish["second"] == pytest.approx(10.0)
        assert finish["first"] == pytest.approx(12.5)

    def test_active_transfers_counter(self):
        sim = Simulator()
        link = Link(sim, bandwidth=1.0)
        link.transfer(10.0)
        link.transfer(10.0)
        assert link.active_transfers == 2
        sim.run()
        assert link.active_transfers == 0
