"""Trace-replay equivalence: platforms charge identical costs whether
driven by a live superstep program or a cached
:class:`~repro.algorithms.base.SuperstepTrace`.

Every platform x every algorithm is checked on small unregistered
graphs (identity scale model, so no simulated crashes): the
:class:`JobResult` from trace replay must be *identical* — T, Tc,
breakdown, supersteps, and output — to live execution.
"""

import numpy as np
import pytest

from repro.algorithms.base import (
    ALGORITHM_NAMES,
    get_algorithm,
    record_trace,
)
from repro.core.runner import Runner
from repro.core.spec import RunSpec
from repro.core.suite import ALL_PLATFORMS
from repro.core.trace_cache import TraceCache, trace_key
from repro.platforms import get_platform
from repro.platforms.registry import PLATFORM_NAMES


def _record(algorithm: str, graph):
    algo = get_algorithm(algorithm)
    prog = algo.program(graph, **algo.default_params(graph))
    return record_trace(prog, graph, algorithm=algorithm)


def _assert_identical(live, replayed) -> None:
    assert replayed.execution_time == live.execution_time
    assert replayed.computation_time == live.computation_time
    assert replayed.breakdown == live.breakdown
    assert replayed.supersteps == live.supersteps
    if isinstance(live.output, np.ndarray):
        assert np.array_equal(replayed.output, live.output)
    else:
        assert replayed.output == live.output


@pytest.mark.parametrize("platform", PLATFORM_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
class TestReplayMatchesLive:
    def test_undirected(self, platform, algorithm, random_graph, small_cluster):
        plat = get_platform(platform)
        live = plat.run(algorithm, random_graph, small_cluster)
        trace = _record(algorithm, random_graph)
        replayed = plat.run(algorithm, random_graph, small_cluster, trace=trace)
        _assert_identical(live, replayed)

    def test_directed(self, platform, algorithm, random_digraph, small_cluster):
        plat = get_platform(platform)
        live = plat.run(algorithm, random_digraph, small_cluster)
        trace = _record(algorithm, random_digraph)
        replayed = plat.run(algorithm, random_digraph, small_cluster, trace=trace)
        _assert_identical(live, replayed)


class TestRecorder:
    def test_trace_shape(self, random_graph):
        trace = _record("bfs", random_graph)
        assert trace.algorithm == "bfs"
        assert trace.num_vertices == random_graph.num_vertices
        assert trace.num_supersteps == len(trace.reports)
        assert trace.reports[-1].halted
        assert trace.matches(random_graph)

    def test_reports_are_frozen_and_pinned(self, random_graph):
        trace = _record("bfs", random_graph)
        report = trace.reports[0]
        assert getattr(report, "_trace_pinned", False)
        with pytest.raises(ValueError):
            report.compute_edges[0] = 99

    def test_replay_is_reusable(self, random_graph):
        trace = _record("bfs", random_graph)
        first = [r.num_active(trace.num_vertices) for r in trace.replay(random_graph)]
        second = [r.num_active(trace.num_vertices) for r in trace.replay(random_graph)]
        assert first == second and len(first) == trace.num_supersteps

    def test_replay_output_matches_program_contract(self, random_graph):
        algo = get_algorithm("conn")
        prog = algo.program(random_graph)
        trace = record_trace(prog, random_graph, algorithm="conn")
        replay = trace.replay(random_graph)
        for _ in replay:
            pass
        assert np.array_equal(replay.result(), trace.output)
        # CONN overrides output_bytes (the paper's "large output");
        # replay must serve the recorded value, not the base default.
        assert replay.output_bytes() == trace.output_size_bytes

    def test_record_rejects_stepped_program(self, random_graph):
        algo = get_algorithm("bfs")
        prog = algo.program(random_graph, **algo.default_params(random_graph))
        next(iter(prog))
        with pytest.raises(ValueError):
            record_trace(prog, random_graph)

    def test_record_rejects_foreign_graph(self, random_graph, random_digraph):
        algo = get_algorithm("bfs")
        prog = algo.program(random_graph, source=0)
        with pytest.raises(ValueError):
            record_trace(prog, random_digraph)

    def test_replay_rejects_mismatched_graph(self, random_graph, random_digraph):
        trace = _record("bfs", random_graph)
        with pytest.raises(ValueError):
            trace.replay(random_digraph)

    def test_run_rejects_wrong_algorithm_trace(self, random_graph, small_cluster):
        trace = _record("bfs", random_graph)
        with pytest.raises(ValueError):
            get_platform("giraph").run(
                "conn", random_graph, small_cluster, trace=trace
            )


class TestTraceCache:
    def test_multi_platform_sweep_records_once(self, random_graph, small_cluster):
        """The acceptance criterion: 6 platforms, 1 algorithm, 1 dataset
        -> the program executes exactly once (5 hits, 1 miss)."""
        runner = Runner()
        for plat in ALL_PLATFORMS:
            rec = runner.run(RunSpec(plat, "bfs", random_graph, small_cluster))
            assert rec.ok, (plat, rec.failure_reason)
        assert runner.trace_cache.misses == 1
        assert runner.trace_cache.hits == len(ALL_PLATFORMS) - 1

    def test_key_ignores_partitioning_but_not_params(self, random_graph):
        k1 = trace_key("bfs", random_graph, params={"source": 1})
        k2 = trace_key("bfs", random_graph, params={"source": 2})
        k3 = trace_key("bfs", random_graph, params={"source": 1})
        assert k1 != k2 and k1 == k3

    def test_named_dataset_key_uses_scale(self, random_graph):
        k1 = trace_key("bfs", random_graph, dataset="kgs", scale=1.0)
        k2 = trace_key("bfs", random_graph, dataset="kgs", scale=2.0)
        assert k1 != k2

    def test_eviction_bounds_entries(self, random_graph):
        cache = TraceCache(max_entries=2)
        algo = get_algorithm("bfs")
        for source in range(4):
            cache.get_or_record(algo, random_graph, params={"source": source})
        assert len(cache) == 2
        assert cache.misses == 4

    def test_stale_graph_object_is_not_served(self, random_graph, random_digraph):
        cache = TraceCache()
        algo = get_algorithm("bfs")
        key = trace_key("bfs", random_graph, dataset="x")
        trace, _ = cache.get_or_record(algo, random_graph, dataset="x")
        assert cache.lookup(key, random_graph) is trace
        assert cache.lookup(key, random_digraph) is None

    def test_disabled_cache_runs_live(self, random_graph, small_cluster):
        runner = Runner(use_trace_cache=False)
        rec = runner.run(RunSpec("giraph", "bfs", random_graph, small_cluster))
        assert rec.ok
        assert runner.trace_cache.hits == runner.trace_cache.misses == 0

    def test_fault_plan_is_part_of_the_key(self, random_graph):
        from repro.des.faults import FaultPlan, named_plan

        bare = trace_key("bfs", random_graph)
        empty = trace_key("bfs", random_graph, fault_plan=FaultPlan.empty())
        # the empty plan is the identity: it shares the fault-free entry
        assert empty == bare
        crash = trace_key(
            "bfs", random_graph, fault_plan=named_plan("crash", at=5.0)
        )
        other = trace_key(
            "bfs", random_graph, fault_plan=named_plan("crash", at=6.0)
        )
        assert crash != bare
        assert crash != other

    def test_runner_never_shares_traces_across_fault_plans(
        self, random_graph, small_cluster
    ):
        """Property: a cached trace recorded under one fault plan is
        never served to a cell running under a different one."""
        from repro.des.faults import FaultPlan, named_plan

        runner = Runner()
        base = runner.run(RunSpec("hadoop", "bfs", random_graph, small_cluster))
        assert runner.trace_cache.misses == 1
        plan = named_plan("crash", at=0.5 * base.execution_time, node=1)
        faulted = runner.run(RunSpec(
            "hadoop", "bfs", random_graph, small_cluster, fault_plan=plan
        ))
        # different plan -> different key -> a fresh recording
        assert runner.trace_cache.misses == 2
        assert faulted.execution_time > base.execution_time
        # the same plan hits its own entry; the empty plan hits the
        # fault-free entry — and both charge bit-identical costs
        again = runner.run(RunSpec(
            "hadoop", "bfs", random_graph, small_cluster, fault_plan=plan
        ))
        empty = runner.run(RunSpec(
            "hadoop", "bfs", random_graph, small_cluster,
            fault_plan=FaultPlan.empty(),
        ))
        assert runner.trace_cache.misses == 2
        assert runner.trace_cache.hits == 2
        assert again.execution_time == faulted.execution_time
        assert empty.execution_time == base.execution_time

    def test_replayed_trace_does_not_mask_faults(
        self, random_graph, small_cluster
    ):
        """Replaying a recorded workload under a fault plan charges the
        same faulted costs as live execution under that plan."""
        from repro.des.faults import named_plan

        plat = get_platform("graphlab")
        base = plat.run("bfs", random_graph, small_cluster)
        plan = named_plan("crash", at=0.5 * base.execution_time, node=1)
        live = plat.run("bfs", random_graph, small_cluster, fault_plan=plan)
        trace = _record("bfs", random_graph)
        replayed = plat.run(
            "bfs", random_graph, small_cluster, trace=trace, fault_plan=plan
        )
        _assert_identical(live, replayed)
        assert replayed.job_restarts == live.job_restarts == 1
        assert replayed.recovery_seconds == live.recovery_seconds


class TestWallClock:
    def test_wall_fields_populated(self, random_graph, small_cluster):
        result = get_platform("giraph").run("bfs", random_graph, small_cluster)
        assert result.wall_time_seconds > 0
        assert set(result.wall_breakdown) == {"prepare", "charge"}
        assert result.wall_time_seconds == pytest.approx(
            sum(result.wall_breakdown.values())
        )

    def test_runner_accounts_trace_recording(self, random_graph, small_cluster):
        runner = Runner()
        rec = runner.run(RunSpec("giraph", "bfs", random_graph, small_cluster))
        assert rec.result is not None
        assert "trace_record" in rec.result.wall_breakdown
        # Second platform hits the cache: no recording phase.
        rec2 = runner.run(RunSpec("graphlab", "bfs", random_graph, small_cluster))
        assert rec2.result is not None
        assert "trace_record" not in rec2.result.wall_breakdown


class TestRepetitionShortCircuit:
    def test_deterministic_repetitions_simulate_once(
        self, random_graph, small_cluster, monkeypatch
    ):
        from repro.platforms.giraph import Giraph

        calls = {"n": 0}
        orig = Giraph._execute

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(Giraph, "_execute", counting)
        runner = Runner(repetitions=7, jitter=0.0)
        rec = runner.run(RunSpec("giraph", "bfs", random_graph, small_cluster))
        assert calls["n"] == 1
        assert len(rec.repetition_times) == 7
        assert len(set(rec.repetition_times)) == 1
        assert rec.execution_time == pytest.approx(rec.repetition_times[0])

    def test_jittered_repetitions_still_vary(self, random_graph, small_cluster):
        runner = Runner(repetitions=4, jitter=0.05)
        rec = runner.run(RunSpec("giraph", "bfs", random_graph, small_cluster))
        assert len(rec.repetition_times) == 4
        assert len(set(rec.repetition_times)) > 1
