"""Doctests embedded in module documentation must stay runnable."""

import doctest

import pytest

import repro.des as des_pkg


@pytest.mark.parametrize("module", [des_pkg])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0


def test_package_quickstart_docstring():
    """The quickstart in repro's package docstring must execute."""
    from repro import das4_cluster, get_platform, load_dataset

    g = load_dataset("dotaleague")
    assert not g.directed
    result = get_platform("giraph").run("bfs", g, das4_cluster())
    assert result.execution_time > 0
