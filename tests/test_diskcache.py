"""Tests for the on-disk dataset cache."""

import numpy as np
import pytest

from repro.datasets import diskcache
from repro.graph.builder import from_edges


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
    return tmp_path


@pytest.fixture
def sample_graph():
    return from_edges(
        5, np.array([[0, 1], [1, 2], [3, 4]]), directed=True, name="sample"
    )


class TestRoundTrip:
    def test_store_then_load(self, cache_dir, sample_graph):
        diskcache.store_cached("sample", 1.0, None, sample_graph)
        loaded = diskcache.load_cached("sample", 1.0, None)
        assert loaded == sample_graph
        assert loaded.name == "sample"

    def test_undirected_roundtrip(self, cache_dir):
        g = from_edges(4, np.array([[0, 1], [2, 3]]), directed=False,
                       name="und")
        diskcache.store_cached("und", 0.5, 7, g)
        assert diskcache.load_cached("und", 0.5, 7) == g

    def test_miss_returns_none(self, cache_dir):
        assert diskcache.load_cached("nothing", 1.0, None) is None

    def test_keys_distinguish_scale_and_seed(self, cache_dir, sample_graph):
        diskcache.store_cached("s", 1.0, None, sample_graph)
        assert diskcache.load_cached("s", 2.0, None) is None
        assert diskcache.load_cached("s", 1.0, 42) is None

    def test_corrupt_entry_evicted(self, cache_dir, sample_graph):
        diskcache.store_cached("s", 1.0, None, sample_graph)
        files = list(cache_dir.glob("*.npz"))
        assert len(files) == 1
        files[0].write_bytes(b"not a real npz file")
        assert diskcache.load_cached("s", 1.0, None) is None
        assert not files[0].exists()  # evicted


class TestToggles:
    def test_disabled_by_env(self, cache_dir, sample_graph, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", "0")
        assert not diskcache.cache_enabled()
        diskcache.store_cached("s", 1.0, None, sample_graph)
        assert not list(cache_dir.glob("*.npz"))
        assert diskcache.load_cached("s", 1.0, None) is None

    def test_version_in_filename(self, cache_dir, sample_graph):
        diskcache.store_cached("s", 1.0, None, sample_graph)
        (entry,) = cache_dir.glob("*.npz")
        assert f"-v{diskcache.GENERATOR_VERSION}.npz" in entry.name


class TestRegistryIntegration:
    def test_second_load_hits_disk(self, cache_dir):
        from repro.datasets.registry import _cache, load_dataset

        g1 = load_dataset("kgs", scale=0.02, seed=321)
        _cache.pop(("kgs", 0.02, 321))  # drop the in-memory entry
        g2 = load_dataset("kgs", scale=0.02, seed=321)
        assert g1 == g2
        assert g2.name == "kgs"
