"""Tests for report rendering and the BenchmarkSuite table methods."""

import pytest

from repro.core.report import (
    format_seconds,
    render_comparison,
    render_series,
    render_table,
)
from repro.core.suite import ALL_PLATFORMS, DISTRIBUTED_PLATFORMS, BenchmarkSuite


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(0.5) == "500ms"
        assert format_seconds(12.3) == "12.3s"
        assert format_seconds(120) == "2.0m"
        assert format_seconds(7200) == "2.0h"
        assert format_seconds(None) == "-"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len({len(ln) for ln in lines}) == 1  # all same width
        assert "333" in out

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_render_series(self):
        out = render_series("n", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        assert "s1" in out and "40" in out

    def test_render_series_missing_values(self):
        out = render_series("n", [1, 2, 3], {"s": [10]})
        assert out.count("-") >= 2

    def test_render_comparison(self):
        out = render_comparison([("metric", 1.0, 2.0)], title="cmp")
        assert "paper" in out and "measured" in out


class TestSuiteTables:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite()

    def test_platform_lists(self):
        assert len(DISTRIBUTED_PLATFORMS) == 5
        assert ALL_PLATFORMS[-1] == "neo4j"

    def test_table2(self, suite):
        data, text = suite.table2_datasets()
        assert len(data) == 7
        assert "dotaleague" in text
        assert "paper #E" in text

    def test_table5(self, suite):
        data, text = suite.table5_bfs_statistics()
        by_name = {d["name"]: d for d in data}
        assert by_name["citation"]["coverage"] < 0.05
        assert by_name["kgs"]["coverage"] > 0.95
        assert "iterations" in text

    def test_table6(self, suite):
        data, text = suite.table6_ingestion()
        by_name = {d["name"]: d for d in data}
        # HDFS seconds vs Neo4j hours
        assert by_name["kgs"]["neo4j"] > 100 * by_name["kgs"]["hdfs"]
        assert "N/A" not in text.splitlines()[3]  # amazon row has both

    def test_table7(self, suite):
        data, text = suite.table7_dev_effort()
        assert "giraph" in data
        assert "core LoC" in text

    def test_fig15_breakdown(self, suite):
        data, text = suite.fig15_breakdown()
        assert "overhead" in text
        # every distributed platform completed BFS on dotaleague
        assert len(data) == 6

    def test_fig16_graphlab_breakdown(self, suite):
        data, text = suite.fig16_graphlab_breakdown()
        # GraphLab CONN: overhead (loading+finalize) dominates (fig 16)
        for ds, (comp, over) in data.items():
            if ds == "friendster":
                continue
            assert over > comp, ds


class TestCli:
    def test_table_command(self, capsys):
        from repro.cli import main

        assert main(["table", "7"]) == 0
        assert "core LoC" in capsys.readouterr().out

    def test_datasets_command(self, capsys):
        from repro.cli import main

        assert main(["datasets"]) == 0
        assert "friendster" in capsys.readouterr().out

    def test_platforms_command(self, capsys):
        from repro.cli import main

        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "graphlab_mp" in out and "single machine" in out

    def test_run_command_ok(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--platform", "giraph", "--algorithm", "bfs",
            "--dataset", "kgs",
        ]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out and "NEPS" in out

    def test_run_command_crash_exit_code(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--platform", "giraph", "--algorithm", "stats",
            "--dataset", "wikitalk",
        ]) == 1
        assert "crashed" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        from repro.cli import main

        assert main(["figure", "99"]) == 2

    def test_unknown_table(self, capsys):
        from repro.cli import main

        assert main(["table", "9"]) == 2

    def test_static_table_commands(self, capsys):
        from repro.cli import main

        for number, token in (("1", "NEPS"), ("3", "Traversal"),
                              ("4", "Stratosphere"), ("8", "This work")):
            assert main(["table", number]) == 0
            assert token in capsys.readouterr().out


class TestDefinitionalTables:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite()

    def test_table1(self, suite):
        data, text = suite.table1_metrics()
        assert "normalized EPS (NEPS)" in data
        assert "relevant aspect" in text

    def test_table3_totals(self, suite):
        data, text = suite.table3_algorithm_survey()
        assert sum(r.count for r in data) == 149
        assert "46.3%" in text

    def test_table4_matches_models(self, suite):
        from repro.platforms.registry import get_platform

        data, text = suite.table4_platforms()
        for row in data:
            assert get_platform(row.name).distributed == row.distributed
        assert "Neo4j 1.5" in text

    def test_table8_rows(self, suite):
        data, text = suite.table8_related_work()
        assert data[-1].study == "This work"
        assert "Pregel" in text

    def test_figure_command(self, capsys):
        from repro.cli import main

        assert main(["figure", "15"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out and "overhead" in out
