"""The frozen ``repro.api`` v1 contract.

Three properties make the API safe to build a service on, and each is
tested here rather than asserted in prose:

* **round-trip stability** — for every payload type, ``from_json(
  to_json(x)) == x`` and re-encoding is *bit-identical* (property-
  tested with hypothesis over the full admissible input space);
* **schema freeze** — each type's :meth:`json_schema` matches a golden
  file under ``tests/goldens/api_v1/``; an accidental contract change
  fails the suite instead of shipping (regenerate deliberately with
  ``python -c`` + ``json.dumps(..., indent=2, sort_keys=True)``);
* **equivalence** — ``PredictRequest.to_run_spec()`` produces the same
  cell a direct :class:`~repro.core.spec.RunSpec` would, so the
  service and the library answer the same question identically.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    API_VERSION,
    ApiError,
    ApiService,
    JobStatus,
    PredictRequest,
    PredictResponse,
    SweepRequest,
    canonical_json,
    sweep_result_dict,
)
from repro.core.runner import Runner
from repro.core.spec import RunSpec

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens" / "api_v1"

# -- strategies -------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_params = st.dictionaries(_names, _scalars, max_size=4)

predict_requests = st.builds(
    PredictRequest,
    platform=_names,
    algorithm=_names,
    dataset=_names,
    scale=st.floats(min_value=0.01, max_value=64.0, allow_nan=False),
    num_workers=st.integers(min_value=1, max_value=100),
    # the DAS-4 machine model reserves one of its 8 cores for the OS
    cores_per_worker=st.integers(min_value=1, max_value=7),
    repetitions=st.integers(min_value=1, max_value=10),
    params=_params,
)

sweep_requests = st.builds(
    SweepRequest,
    platforms=st.lists(_names, min_size=1, max_size=4).map(tuple),
    algorithms=st.lists(_names, min_size=1, max_size=3).map(tuple),
    datasets=st.lists(_names, min_size=1, max_size=3).map(tuple),
    name=_names,
    scale=st.floats(min_value=0.01, max_value=64.0, allow_nan=False),
    num_workers=st.integers(min_value=1, max_value=100),
    cores_per_worker=st.integers(min_value=1, max_value=7),
    workers=st.integers(min_value=1, max_value=8),
    params=_params,
)

_opt_time = st.one_of(
    st.none(),
    st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32),
)
predict_responses = st.builds(
    PredictResponse,
    platform=_names,
    algorithm=_names,
    dataset=_names,
    status=st.sampled_from(["ok", "crashed", "dnf"]),
    execution_time=_opt_time,
    computation_time=_opt_time,
    overhead_time=_opt_time,
    supersteps=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
    breakdown=st.dictionaries(
        _names,
        st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32),
        max_size=5,
    ).map(lambda d: tuple(d.items())),
    num_vertices=st.one_of(st.none(), st.integers(min_value=0)),
    num_edges=st.one_of(st.none(), st.integers(min_value=0)),
    eps=_opt_time,
    vps=_opt_time,
    repetition_times=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32),
        max_size=4,
    ).map(tuple),
    failure_reason=st.one_of(st.none(), st.text(min_size=1, max_size=40)),
)

job_statuses = st.builds(
    JobStatus,
    job_id=_names,
    kind=st.sampled_from(["predict", "sweep"]),
    state=st.sampled_from(["queued", "running", "done", "failed"]),
    result=st.one_of(st.none(), st.dictionaries(_names, _scalars, max_size=3)),
    error=st.one_of(st.none(), st.text(min_size=1, max_size=40)),
)


# -- round-trip properties --------------------------------------------------


class TestRoundTrip:
    """``from_json(to_json(x)) == x`` and the re-encoding is the same
    bytes — the wire format loses nothing and reorders nothing."""

    @settings(max_examples=200, deadline=None)
    @given(predict_requests)
    def test_predict_request(self, req):
        wire = req.to_json()
        back = PredictRequest.from_json(wire)
        assert back == req
        assert back.to_json() == wire

    @settings(max_examples=100, deadline=None)
    @given(sweep_requests)
    def test_sweep_request(self, req):
        wire = req.to_json()
        back = SweepRequest.from_json(wire)
        assert back == req
        assert back.to_json() == wire

    @settings(max_examples=200, deadline=None)
    @given(predict_responses)
    def test_predict_response(self, resp):
        wire = resp.to_json()
        back = PredictResponse.from_json(wire)
        assert back == resp
        assert back.to_json() == wire

    @settings(max_examples=100, deadline=None)
    @given(job_statuses)
    def test_job_status(self, status):
        wire = status.to_json()
        back = JobStatus.from_json(wire)
        assert back == status
        assert back.to_json() == wire

    @settings(max_examples=100, deadline=None)
    @given(predict_requests)
    def test_cell_key_survives_the_wire(self, req):
        """Coalescing keys computed client- and server-side agree."""
        assert PredictRequest.from_json(req.to_json()).cell_key() == (
            req.cell_key()
        )

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


# -- golden schemas ---------------------------------------------------------


@pytest.mark.parametrize(
    "cls, golden",
    [
        (PredictRequest, "predict_request.json"),
        (SweepRequest, "sweep_request.json"),
        (PredictResponse, "predict_response.json"),
        (JobStatus, "job_status.json"),
    ],
)
def test_schema_matches_golden(cls, golden):
    """The published v1 schema is frozen; editing it is a deliberate
    act (regenerate the golden file), never a side effect."""
    expected = json.loads((GOLDEN_DIR / golden).read_text())
    assert cls.json_schema() == expected


@pytest.mark.parametrize(
    "cls", [PredictRequest, SweepRequest, PredictResponse, JobStatus]
)
def test_schema_is_closed_and_versioned(cls):
    schema = cls.json_schema()
    assert schema["additionalProperties"] is False
    assert schema["properties"]["api_version"] == {"const": API_VERSION}


# -- validation errors ------------------------------------------------------


class TestValidation:
    def test_missing_field(self):
        with pytest.raises(ApiError, match="missing field 'dataset'"):
            PredictRequest.from_dict(
                {"platform": "giraph", "algorithm": "bfs"}
            )

    def test_unknown_version(self):
        with pytest.raises(ApiError, match="unsupported api_version 99"):
            PredictRequest.from_dict({
                "api_version": 99, "platform": "giraph",
                "algorithm": "bfs", "dataset": "amazon",
            })

    def test_non_scalar_param(self):
        with pytest.raises(ApiError, match="non-JSON-scalar"):
            PredictRequest(
                platform="giraph", algorithm="bfs", dataset="amazon",
                params={"sources": [1, 2, 3]},
            )

    def test_invalid_body(self):
        with pytest.raises(ApiError, match="not valid JSON"):
            PredictRequest.from_json(b"{nope")

    def test_bad_counts(self):
        with pytest.raises(ApiError):
            PredictRequest(
                platform="p", algorithm="a", dataset="d", num_workers=0
            )
        with pytest.raises(ApiError):
            SweepRequest(
                platforms=("p",), algorithms=("a",), datasets=("d",),
                workers=0,
            )

    def test_empty_sweep_axis(self):
        with pytest.raises(ApiError, match="platforms must be"):
            SweepRequest(platforms=(), algorithms=("a",), datasets=("d",))

    def test_sweep_axis_rejects_bare_string(self):
        with pytest.raises(ApiError, match="algorithms must be"):
            SweepRequest(
                platforms=("p",), algorithms="bfs", datasets=("d",)
            )

    def test_unknown_job_state(self):
        with pytest.raises(ApiError, match="unknown job state"):
            JobStatus(job_id="j", kind="predict", state="paused")

    def test_uncoercible_field_types_are_api_errors(self):
        """Client payloads with wrong field types must surface as the
        contract's 400-mapped error, never a bare TypeError/ValueError
        (which the server would answer with a 500)."""
        base = {"platform": "giraph", "algorithm": "bfs", "dataset": "amazon"}
        with pytest.raises(ApiError, match="bad PredictRequest field"):
            PredictRequest.from_dict(dict(base, scale="fast"))
        with pytest.raises(ApiError, match="bad PredictRequest field"):
            PredictRequest.from_dict(dict(base, num_workers={}))
        with pytest.raises(ApiError, match="bad SweepRequest field"):
            SweepRequest.from_dict({
                "platforms": ["giraph"], "algorithms": ["bfs"],
                "datasets": ["amazon"], "workers": "many",
            })


# -- equivalence with the spec layer ---------------------------------------


class TestSpecEquivalence:
    def test_request_produces_the_canonical_spec(self, cluster20):
        req = PredictRequest(
            platform="Giraph", algorithm="BFS", dataset="Amazon"
        )
        spec = req.to_run_spec()
        direct = RunSpec(
            platform="giraph", algorithm="bfs", dataset="amazon",
            cluster=cluster20,
        )
        assert spec.cell_key() == direct.cell_key()

    def test_sweep_cells_follow_canonical_order(self):
        req = SweepRequest(
            platforms=("giraph", "neo4j"),
            algorithms=("bfs",),
            datasets=("amazon", "wikitalk"),
        )
        cells = req.cells()
        assert [(c.dataset, c.platform) for c in cells] == [
            ("amazon", "giraph"), ("amazon", "neo4j"),
            ("wikitalk", "giraph"), ("wikitalk", "neo4j"),
        ]
        spec_cells = list(req.to_sweep_spec().cells())
        assert [c.to_run_spec().cell_key() for c in cells] == [
            s.cell_key() for s in spec_cells
        ]

    def test_response_from_record_matches_runner(self):
        runner = Runner()
        spec = PredictRequest(
            platform="neo4j", algorithm="bfs", dataset="amazon"
        ).to_run_spec()
        record = runner.run(spec)
        resp = PredictResponse.from_record(record)
        assert resp.ok
        assert resp.execution_time == record.execution_time
        assert resp.status == "ok"
        # the dict round-trips through the canonical wire encoding
        assert PredictResponse.from_json(resp.to_json()) == resp

    def test_failed_cell_is_an_answer_too(self):
        runner = Runner()
        record = runner.run(PredictRequest(
            platform="giraph", algorithm="stats", dataset="wikitalk"
        ).to_run_spec())
        assert not record.ok
        resp = PredictResponse.from_record(record)
        assert resp.status == record.status.value
        assert resp.execution_time is None
        assert resp.failure_reason
        assert PredictResponse.from_json(resp.to_json()) == resp


# -- the reference service --------------------------------------------------


class TestApiService:
    @pytest.fixture(scope="class")
    def service(self):
        return ApiService(Runner())

    def test_predict_submit_result(self, service):
        req = PredictRequest(
            platform="neo4j", algorithm="bfs", dataset="amazon"
        )
        job_id = service.submit(req)
        status = service.result(job_id)
        assert status.kind == "predict"
        assert status.state == "done"
        direct = PredictResponse.from_record(
            service.runner.run(req.to_run_spec())
        )
        assert canonical_json(status.result) == direct.to_json()

    def test_sweep_submit_result(self, service):
        req = SweepRequest(
            platforms=("giraph", "neo4j"),
            algorithms=("bfs",),
            datasets=("amazon",),
            name="svc-sweep",
        )
        job_id = service.submit(req)
        status = service.result(job_id)
        assert status.state == "done"
        assert status.kind == "sweep"
        assert status.result["name"] == "svc-sweep"
        assert len(status.result["cells"]) == 2
        direct = sweep_result_dict(
            service.runner.run_grid(req.to_sweep_spec())
        )
        assert canonical_json(status.result) == canonical_json(direct)

    def test_failed_job_reports_failed_state(self, service):
        job_id = service.submit(PredictRequest(
            platform="no-such-platform", algorithm="bfs", dataset="amazon"
        ))
        status = service.result(job_id)
        assert status.state == "failed"
        assert status.error

    def test_unknown_job_raises(self, service):
        with pytest.raises(KeyError):
            service.result("job-999999")

    def test_submit_rejects_foreign_types(self, service):
        with pytest.raises(ApiError, match="submit\\(\\) takes"):
            service.submit({"platform": "giraph"})

    def test_repetitions_mismatch_uses_request_repetitions(self, service):
        req = PredictRequest(
            platform="neo4j", algorithm="bfs", dataset="amazon",
            repetitions=3,
        )
        resp = service.predict(req)
        assert len(resp.repetition_times) == 3
        direct = PredictResponse.from_record(
            Runner(
                repetitions=3, trace_cache=service.runner.trace_cache
            ).run(req.to_run_spec())
        )
        assert resp.to_json() == direct.to_json()

    def test_scale_mismatch_uses_request_scale(self, service):
        req = PredictRequest(
            platform="neo4j", algorithm="bfs", dataset="amazon", scale=0.5
        )
        resp = service.predict(req)
        assert resp.ok
        direct = PredictResponse.from_record(
            Runner(scale=0.5, trace_cache=service.runner.trace_cache).run(
                req.to_run_spec()
            )
        )
        assert resp.to_json() == direct.to_json()
