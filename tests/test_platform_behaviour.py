"""Behavioural tests: the paper's key findings must hold.

These are the reproduction contract — each test cites the paper claim
it checks (section in parentheses).

The whole module is an end-to-end sweep over paper-scale runs, so it is
tier-2: deselected by default, run with ``pytest -m slow``.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.cluster.spec import das4_cluster
from repro.datasets import DATASET_NAMES, load_dataset
from repro.platforms import JobTimeout, PlatformCrash, get_platform


def _run(platform, algorithm, dataset, cluster=None, **kw):
    g = load_dataset(dataset)
    return get_platform(platform).run(algorithm, g, cluster or das4_cluster(), **kw)


@pytest.fixture(scope="module")
def bfs_times():
    """BFS execution time for every completing platform x dataset."""
    out = {}
    for ds in DATASET_NAMES:
        g = load_dataset(ds)
        for plat in ("hadoop", "yarn", "stratosphere", "giraph", "graphlab"):
            try:
                out[(plat, ds)] = get_platform(plat).run(
                    "bfs", g, das4_cluster()
                ).execution_time
            except (PlatformCrash, JobTimeout):
                out[(plat, ds)] = None
    return out


class TestKeyFinding1HadoopWorst:
    """'Hadoop is the worst performer in all cases' (Section 4.1)."""

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_hadoop_slowest_bfs(self, bfs_times, dataset):
        hadoop = bfs_times[("hadoop", dataset)]
        if hadoop is None:
            pytest.skip("hadoop did not complete")
        for plat in ("yarn", "stratosphere", "giraph", "graphlab"):
            other = bfs_times[(plat, dataset)]
            if other is not None:
                assert hadoop > other, f"{plat} slower than hadoop on {dataset}"

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_yarn_only_slightly_better(self, bfs_times, dataset):
        """YARN 'performs only slightly better than Hadoop' (4.1.1)."""
        hadoop = bfs_times[("hadoop", dataset)]
        yarn = bfs_times[("yarn", dataset)]
        if hadoop is None or yarn is None:
            pytest.skip("missing cells")
        assert 0.7 * hadoop < yarn < hadoop


class TestKeyFinding2Stratosphere:
    """Stratosphere is 'up to an order of magnitude lower execution
    time' than Hadoop (Section 4.1.1)."""

    def test_order_of_magnitude_on_amazon(self, bfs_times):
        assert bfs_times[("hadoop", "amazon")] > 10 * bfs_times[
            ("stratosphere", "amazon")
        ]

    @pytest.mark.parametrize("dataset", ["wikitalk", "kgs", "dotaleague"])
    def test_much_faster_than_hadoop(self, bfs_times, dataset):
        assert bfs_times[("hadoop", dataset)] > 5 * bfs_times[
            ("stratosphere", dataset)
        ]


class TestKeyFinding3GraphSpecificFast:
    """Giraph executes everything it completes in under ~100 s
    (Section 4.1.2, Figure 3)."""

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_giraph_under_100s(self, bfs_times, dataset):
        t = bfs_times[("giraph", dataset)]
        if t is None:
            pytest.skip("giraph crashed (friendster)")
        assert t < 100

    def test_iteration_count_hurts_mapreduce_not_giraph(self, bfs_times):
        """Amazon (68-ish iterations) vs WikiTalk (8): Hadoop blows up,
        Giraph barely moves (Section 4.1.1)."""
        hadoop_ratio = bfs_times[("hadoop", "amazon")] / bfs_times[
            ("hadoop", "wikitalk")
        ]
        giraph_ratio = bfs_times[("giraph", "amazon")] / bfs_times[
            ("giraph", "wikitalk")
        ]
        assert hadoop_ratio > 8
        assert giraph_ratio < 5


class TestCrashMatrix:
    """Section 4.1.2/4.1.3 crash cells."""

    def test_giraph_stats_wikitalk_crashes(self):
        with pytest.raises(PlatformCrash):
            _run("giraph", "stats", "wikitalk")

    def test_giraph_friendster_only_evo_completes(self):
        for algo in ("stats", "bfs", "conn", "cd"):
            with pytest.raises(PlatformCrash):
                _run("giraph", algo, "friendster")
        result = _run("giraph", "evo", "friendster")
        assert result.execution_time < 100

    @pytest.mark.parametrize("platform", ["giraph", "hadoop", "yarn"])
    def test_stats_dotaleague_crashes(self, platform):
        with pytest.raises(PlatformCrash):
            _run(platform, "stats", "dotaleague")

    def test_stratosphere_stats_dotaleague_dnf(self):
        """Paper terminated Stratosphere's STATS/DotaLeague at ~4 h."""
        with pytest.raises(JobTimeout):
            _run("stratosphere", "stats", "dotaleague")

    def test_neo4j_stats_cd_dotaleague_dnf(self):
        """'STATS and CD run for more than 20 hours in Neo4j' (4.1.3)."""
        for algo in ("stats", "cd"):
            with pytest.raises(JobTimeout):
                _run("neo4j", algo, "dotaleague")

    def test_yarn_friendster_crashes_at_20(self):
        with pytest.raises(PlatformCrash):
            _run("yarn", "bfs", "friendster", das4_cluster(20))

    def test_yarn_friendster_ok_at_25(self):
        assert _run("yarn", "bfs", "friendster", das4_cluster(25)).execution_time > 0

    def test_giraph_friendster_ok_at_25(self):
        assert _run("giraph", "bfs", "friendster", das4_cluster(25)).execution_time > 0

    def test_giraph_friendster_crashes_at_every_core_count(self):
        """Vertical test baseline: 'both YARN and Giraph crashed on 20
        computing machines' (Section 4.3.2)."""
        for cores in (1, 4, 7):
            with pytest.raises(PlatformCrash):
                _run("giraph", "bfs", "friendster", das4_cluster(20, cores))

    def test_hadoop_survives_friendster(self):
        assert _run("hadoop", "bfs", "friendster").execution_time > 0

    def test_graphlab_processes_largest_graph(self):
        """'GraphLab is able to process even the largest graph' (4.1.2)."""
        assert _run("graphlab", "bfs", "friendster").execution_time > 0


class TestEvoShape:
    """Stratosphere's one map-reduce-reduce job per EVO iteration vs.
    Hadoop/YARN's two MapReduce jobs (Section 4.1.3)."""

    def test_hadoop_evo_costs_two_jobs_per_iteration(self):
        bfs = _run("hadoop", "bfs", "dotaleague").breakdown["scheduling"]
        evo = _run("hadoop", "evo", "dotaleague").breakdown["scheduling"]
        # BFS on dota has ~5-6 supersteps; EVO has 6 iterations x 2 jobs
        assert evo > 1.5 * bfs

    def test_stratosphere_evo_single_job(self):
        evo = _run("stratosphere", "evo", "dotaleague")
        hadoop_evo = _run("hadoop", "evo", "dotaleague")
        assert evo.execution_time < hadoop_evo.execution_time / 5


class TestIterationCosts:
    """'more iterations result in higher I/O and other overheads'
    (Section 4.1.3): CONN on Citation (20 iters) vs DotaLeague (6)."""

    @pytest.mark.parametrize("platform", ["hadoop", "yarn", "stratosphere"])
    def test_citation_conn_slower_than_dota_conn(self, platform):
        t_cit = _run(platform, "conn", "citation").execution_time
        t_dota = _run(platform, "conn", "dotaleague").execution_time
        assert t_cit > t_dota


class TestGraphLabVariants:
    def test_mp_variant_much_faster_loading(self):
        """GraphLab(mp) beats single-file GraphLab (Section 4.3.1)."""
        single = _run("graphlab", "bfs", "friendster")
        mp = _run("graphlab_mp", "bfs", "friendster")
        assert mp.execution_time < single.execution_time / 5
        assert mp.breakdown["load"] < single.breakdown["load"] / 5

    def test_graphlab_horizontal_flat(self):
        """Single-file GraphLab 'exhibits little scalability' (4.3.1)."""
        t20 = _run("graphlab", "bfs", "friendster", das4_cluster(20)).execution_time
        t50 = _run("graphlab", "bfs", "friendster", das4_cluster(50)).execution_time
        assert t50 > 0.8 * t20  # nearly flat

    def test_graphlab_mp_scales(self):
        t20 = _run("graphlab_mp", "bfs", "friendster", das4_cluster(20)).execution_time
        t50 = _run("graphlab_mp", "bfs", "friendster", das4_cluster(50)).execution_time
        assert t50 < 0.6 * t20

    def test_undirected_doubling(self):
        """GraphLab stores undirected graphs as doubled directed edges
        (Section 4.1.1 — the KGS EPS anomaly)."""
        from repro.platforms.graphlab import GraphLab

        g_u = load_dataset("kgs")
        g_d = load_dataset("citation")
        gl = GraphLab()
        assert gl._edge_factor(g_u) == 2.0
        assert gl._edge_factor(g_d) == 1.0


class TestScalabilityShapes:
    def test_friendster_scales_horizontally_on_hadoop(self):
        t20 = _run("hadoop", "bfs", "friendster", das4_cluster(20)).execution_time
        t50 = _run("hadoop", "bfs", "friendster", das4_cluster(50)).execution_time
        assert t50 < 0.75 * t20

    def test_dotaleague_does_not_scale_horizontally(self):
        """'significant horizontal scalability only for Friendster'."""
        t20 = _run("hadoop", "bfs", "dotaleague", das4_cluster(20)).execution_time
        t50 = _run("hadoop", "bfs", "dotaleague", das4_cluster(50)).execution_time
        assert t50 > 0.85 * t20

    def test_vertical_saturates_after_3_cores(self):
        """'after 3 cores, the improvement becomes negligible' (4.3.2)."""
        t1 = _run("hadoop", "bfs", "friendster", das4_cluster(20, 1)).execution_time
        t3 = _run("hadoop", "bfs", "friendster", das4_cluster(20, 3)).execution_time
        t7 = _run("hadoop", "bfs", "friendster", das4_cluster(20, 7)).execution_time
        assert t3 < 0.9 * t1  # real gain up to 3 cores
        assert t7 > 0.8 * t3  # negligible gain beyond

    def test_neps_decreases_with_cluster_size(self):
        """'the general trend of NEPS is to decrease' (Section 4.3.1)."""
        from repro.core.metrics import normalized_eps

        r20 = _run("stratosphere", "bfs", "friendster", das4_cluster(20))
        r50 = _run("stratosphere", "bfs", "friendster", das4_cluster(50))
        assert normalized_eps(r50) < normalized_eps(r20)
