"""Tests for EVO (Forest Fire graph evolution)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.evo import EvoProgram


class TestEvoProgram:
    def test_runs_configured_iterations(self, random_graph):
        prog = EvoProgram(random_graph, iterations=6)
        assert sum(1 for _ in prog) == 6

    def test_growth_fraction(self, random_graph):
        prog = EvoProgram(random_graph, growth_fraction=0.05, iterations=5)
        for _ in prog:
            pass
        evolved = prog.result()
        expected_new = max(int(round(random_graph.num_vertices * 0.05)), 5)
        assert evolved.num_vertices == random_graph.num_vertices + expected_new

    def test_minimum_one_vertex_per_iteration(self, random_graph):
        """Tiny growth fractions still add >= iterations vertices."""
        prog = EvoProgram(random_graph, growth_fraction=1e-9, iterations=6)
        for _ in prog:
            pass
        assert prog.result().num_vertices >= random_graph.num_vertices + 6

    def test_edges_only_added(self, random_graph):
        prog = EvoProgram(random_graph, growth_fraction=0.02)
        for _ in prog:
            pass
        evolved = prog.result()
        assert evolved.num_edges >= random_graph.num_edges
        assert prog.num_new_edges() > 0

    def test_original_edges_preserved(self, path_graph):
        prog = EvoProgram(path_graph, growth_fraction=0.3, seed=5)
        for _ in prog:
            pass
        evolved = prog.result()
        for v in range(path_graph.num_vertices):
            old = set(path_graph.neighbors(v).tolist())
            new = set(evolved.neighbors(v).tolist())
            assert old <= new

    def test_new_vertices_are_connected(self, random_graph):
        prog = EvoProgram(random_graph, growth_fraction=0.02, seed=7)
        for _ in prog:
            pass
        evolved = prog.result()
        deg = np.asarray(evolved.degree())
        assert np.all(deg[random_graph.num_vertices:] >= 1)

    def test_directed_evolution(self, random_digraph):
        prog = EvoProgram(random_digraph, growth_fraction=0.05)
        for _ in prog:
            pass
        assert prog.result().directed

    def test_deterministic_in_seed(self, random_graph):
        a = EvoProgram(random_graph, seed=3)
        b = EvoProgram(random_graph, seed=3)
        for _ in a:
            pass
        for _ in b:
            pass
        assert a.result() == b.result()

    def test_messages_are_few(self, random_graph):
        """EVO 'generates relatively few messages' (Section 4.1.2)."""
        evo_res = get_algorithm("evo").run_reference(random_graph)
        bfs_res = get_algorithm("bfs").run_reference(random_graph, source=0)
        assert evo_res.total_messages < bfs_res.total_messages

    def test_direction_none(self, random_graph):
        report = EvoProgram(random_graph).step()
        assert report.direction == "none"

    def test_paper_default_params(self, random_graph):
        params = get_algorithm("evo").default_params(random_graph)
        assert params["iterations"] == 6
        assert params["growth_fraction"] == pytest.approx(0.001)
        assert params["p_forward"] == params["p_backward"] == pytest.approx(0.5)

    def test_output_bytes_scales_with_graph(self, random_graph, path_graph):
        big = EvoProgram(random_graph)
        small = EvoProgram(path_graph)
        assert big.output_bytes() > small.output_bytes()
