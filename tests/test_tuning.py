"""Tests for the SPEC-style baseline/peak tuning study."""

import pytest

from repro.core.tuning import TunedPair, TuningStudy, tuned_pair


class TestTunedPair:
    def test_all_platforms_have_pairs(self):
        for name in ("hadoop", "yarn", "stratosphere", "giraph",
                     "graphlab", "neo4j"):
            pair = tuned_pair(name)
            assert isinstance(pair, TunedPair)
            assert pair.name == name

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            tuned_pair("dryad")

    def test_hadoop_baseline_uses_blocks(self):
        pair = tuned_pair("hadoop")
        assert pair.baseline.pin_blocks_to_slots is False
        assert pair.peak.pin_blocks_to_slots is True

    def test_giraph_peak_has_combiner(self):
        pair = tuned_pair("giraph")
        assert not pair.baseline.use_combiner
        assert pair.peak.use_combiner

    def test_graphlab_peak_is_presplit(self):
        pair = tuned_pair("graphlab")
        assert not pair.baseline.pre_split
        assert pair.peak.pre_split

    def test_neo4j_variants_differ_by_cache(self):
        pair = tuned_pair("neo4j")
        assert pair.baseline_kwargs == {"cache": "cold"}
        assert pair.peak_kwargs == {"cache": "hot"}


class TestTuningStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return TuningStudy(algorithm="bfs", dataset="dotaleague").run()

    def test_peak_never_slower(self, study):
        data, _ = study
        for plat, (base, peak) in data.items():
            if base is not None and peak is not None:
                assert peak <= base * 1.001, plat

    def test_graphlab_gains_most_from_presplit(self, study):
        data, _ = study
        base, peak = data["graphlab"]
        assert base / peak > 3

    def test_neo4j_cold_vs_hot_gain(self, study):
        data, _ = study
        base, peak = data["neo4j"]
        assert base / peak > 2

    def test_stratosphere_unchanged(self, study):
        data, _ = study
        base, peak = data["stratosphere"]
        assert base == pytest.approx(peak)

    def test_render(self, study):
        _, text = study
        assert "baseline" in text and "peak" in text and "speedup" in text

    def test_failures_rendered(self):
        """STATS on DotaLeague fails in both configurations."""
        data, text = TuningStudy(
            algorithm="stats", dataset="dotaleague",
            platforms=("giraph",),
        ).run()
        assert data["giraph"] == (None, None)
        assert "FAIL" in text
