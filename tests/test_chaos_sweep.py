"""Chaos-sweep scenario matrix: fault plans x the experiment grid.

The contract under test:

* the matrix crosses plan templates with every baseline cell, reports
  per-cell slowdown against each cell's *own* fault-free makespan, and
  surfaces crashes as frontier survival data — not test failures;
* the whole report is deterministic: ``workers=4`` produces the same
  cells, curves and frontier as ``workers=1``;
* the ``fault_plans`` SweepSpec axis enumerates plan-major and runs
  through the parallel executor bit-identically;
* the CLI front door (``graphbench chaos-sweep``) exports the report
  through the unified ``export()`` dispatch and emits the chaos
  lifecycle events.
"""

from __future__ import annotations

import json

import pytest

from repro.core.chaos import (
    DEFAULT_TEMPLATES,
    resolve_templates,
    run_chaos_sweep,
)
from repro.core.report import ChaosCell, ChaosReport
from repro.core.runner import Runner
from repro.core.spec import SweepSpec
from repro.des.faults import FaultPlan, PlanTemplate, named_plan
from tests.test_spec_sweep import records_equal

PLATFORMS = ("hadoop", "giraph", "graphlab")


@pytest.fixture(scope="module")
def report() -> ChaosReport:
    return run_chaos_sweep(
        Runner(),
        templates=resolve_templates(["crash", "straggler"]),
        platforms=PLATFORMS,
        algorithms=("bfs",),
        datasets=("amazon",),
    )


class TestChaosReport:
    def test_matrix_shape(self, report):
        assert report.plans == ("crash", "straggler")
        assert len(report.cells) == 2 * len(PLATFORMS)
        assert len(report.baselines) == len(PLATFORMS)
        summary = report.summary()
        assert summary["cells"] == 6
        assert summary["attempted"] == 6  # every baseline survived
        assert summary["survived"] + summary["crashed"] == 6

    def test_giraph_crash_cell_dies_without_checkpointing(self, report):
        cell = report.get("crash", "giraph", "bfs", "amazon")
        assert cell is not None
        assert cell.status == "crashed" and not cell.ok
        assert "checkpointing is off" in cell.failure_reason
        assert cell.slowdown is None

    def test_hadoop_crash_cell_survives_with_task_retries(self, report):
        cell = report.get("crash", "hadoop", "bfs", "amazon")
        assert cell is not None and cell.ok
        assert cell.task_retries >= 1
        assert cell.job_restarts == 0
        assert cell.slowdown is not None and cell.slowdown >= 1.0
        assert cell.recovery_seconds > 0.0
        assert cell.faults_fired >= 1

    def test_graphlab_crash_cell_restarts_whole_job(self, report):
        cell = report.get("crash", "graphlab", "bfs", "amazon")
        assert cell is not None and cell.ok
        assert cell.job_restarts == 1
        assert cell.task_retries == 0
        # re-paying ~half the job plus the restart latency: a visible
        # slowdown and a large recovery fraction
        assert cell.slowdown is not None and cell.slowdown > 1.3
        assert 0.0 < cell.recovery_fraction < 1.0

    def test_straggler_cells_all_survive(self, report):
        for platform in PLATFORMS:
            cell = report.get("straggler", platform, "bfs", "amazon")
            assert cell is not None and cell.ok, platform

    def test_degradation_curve_marks_dead_plans(self, report):
        curve = dict(report.degradation_curve("giraph"))
        assert curve["crash"] is None  # every crash cell died
        assert curve["straggler"] is not None
        assert dict(report.degradation_curve("hadoop"))["crash"] >= 1.0

    def test_frontier_accounts_every_platform(self, report):
        frontier = {row["platform"]: row for row in report.frontier()}
        assert set(frontier) == set(PLATFORMS)
        for row in frontier.values():
            assert row["cells"] == 2
            assert 0.0 <= row["survival_rate"] <= 1.0
        assert frontier["giraph"]["survived"] == 1
        assert frontier["hadoop"]["task_retries"] >= 1
        assert frontier["graphlab"]["job_restarts"] >= 1

    def test_survivors_and_failures_partition_attempted_cells(self, report):
        attempted = [c for c in report.cells if c.status != "no-baseline"]
        assert len(report.survivors()) + len(report.failures()) == len(
            attempted
        )

    def test_render_has_all_sections(self, report):
        text = report.render()
        assert "Plan 'crash'" in text
        assert "Graceful degradation" in text
        assert "Availability / recovery-cost frontier" in text
        assert "Killed cells:" in text
        assert "faulted cells survived" in text

    def test_to_dict_is_json_serializable(self, report):
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["report"] == "chaos-sweep"
        assert doc["plans"] == ["crash", "straggler"]
        assert len(doc["cells"]) == 6
        assert doc["degradation_curves"].keys() == set(PLATFORMS)

    def test_cell_describe(self):
        ok = ChaosCell(
            plan="crash", platform="hadoop", algorithm="bfs",
            dataset="amazon", status="ok", baseline_time=10.0,
            execution_time=12.4,
        )
        assert ok.describe() == "1.24x"
        dead = ChaosCell(
            plan="crash", platform="giraph", algorithm="bfs",
            dataset="amazon", status="crashed", baseline_time=10.0,
        )
        assert dead.describe() == "CRASH"
        assert dead.slowdown is None and dead.recovery_fraction is None


class TestDeterminism:
    def test_workers_4_bit_identical_to_workers_1(self):
        def go(workers: int) -> dict:
            r = run_chaos_sweep(
                Runner(),
                templates=resolve_templates(["crash", "seeded"], seed=7),
                platforms=("hadoop", "graphlab"),
                algorithms=("bfs",),
                datasets=("amazon",),
                workers=workers,
            )
            return r.to_dict()

        serial, parallel = go(1), go(4)
        assert serial.pop("workers") == 1
        assert parallel.pop("workers") == 4
        assert serial == parallel  # cells, curves, frontier: bit-identical


class TestValidation:
    def test_rejects_empty_templates(self):
        with pytest.raises(ValueError, match="at least one plan"):
            run_chaos_sweep(
                Runner(), templates=(), platforms=("hadoop",),
                algorithms=("bfs",), datasets=("amazon",),
            )

    def test_rejects_duplicate_template_names(self):
        with pytest.raises(ValueError, match="distinct"):
            run_chaos_sweep(
                Runner(),
                templates=(
                    PlanTemplate("crash", at=0.3),
                    PlanTemplate("crash", at=0.7),
                ),
                platforms=("hadoop",), algorithms=("bfs",),
                datasets=("amazon",),
            )


class TestTemplates:
    def test_all_expands_to_default_set(self):
        assert resolve_templates(["all"]) == DEFAULT_TEMPLATES
        # duplicates collapse while keeping order: the default crash
        # placement is already in the canonical set
        assert resolve_templates(["all", "crash"]) == DEFAULT_TEMPLATES
        assert resolve_templates(["crash", "crash"]) == (
            PlanTemplate("crash", at=0.5, duration=0.2),
        )

    def test_unknown_plan_raises(self):
        with pytest.raises(KeyError, match="unknown plan"):
            resolve_templates(["gremlins"])

    def test_materialize_places_faults_at_fractions(self):
        template = PlanTemplate("crash", at=0.25, node=3)
        plan = template.materialize(400.0)
        assert len(plan) == 1
        assert plan.faults[0].at == 100.0
        assert plan.faults[0].node == 3
        assert plan.name == "crash"

    def test_materialize_seeded_uses_horizon_and_nodes(self):
        template = PlanTemplate("seeded", seed=9, num_faults=4)
        plan = template.materialize(100.0, num_nodes=8)
        assert len(plan) == 4
        assert plan.name == "seeded-9"
        assert plan == template.materialize(100.0, num_nodes=8)  # stable

    def test_template_validation(self):
        with pytest.raises(KeyError):
            PlanTemplate("nonsense")
        with pytest.raises(ValueError, match="seed"):
            PlanTemplate("seeded")
        with pytest.raises(ValueError):
            PlanTemplate("crash", at=-0.1)
        with pytest.raises(ValueError):
            PlanTemplate("crash").materialize(0.0)

    def test_label_overrides_name(self):
        template = PlanTemplate("crash", at=0.9, label="late-crash")
        assert template.name == "late-crash"
        assert template.materialize(10.0).name == "late-crash"


class TestFaultPlansAxis:
    def test_cells_enumerate_plan_major(self):
        plans = (
            named_plan("crash", at=5.0),
            named_plan("straggler", at=2.0, duration=3.0),
        )
        sweep = SweepSpec.make(
            "test:plans-axis",
            platforms=("giraph", "graphlab"),
            algorithms=("bfs",),
            datasets=("amazon",),
            fault_plans=plans,
        )
        cells = list(sweep.cells())
        assert len(cells) == len(sweep) == 4
        assert [c.fault_plan.name for c in cells] == [
            "crash", "crash", "straggler", "straggler"
        ]

    def test_rejects_both_plan_and_axis(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec.make(
                "test:bad",
                platforms=("giraph",), algorithms=("bfs",),
                datasets=("amazon",),
                fault_plan=named_plan("crash", at=5.0),
                fault_plans=(named_plan("crash", at=9.0),),
            )

    def test_no_axis_means_single_shared_plan(self):
        sweep = SweepSpec.make(
            "test:no-axis", platforms=("giraph",), algorithms=("bfs",),
            datasets=("amazon",),
        )
        assert sweep.effective_plans() == (None,)
        assert len(sweep) == 1

    def test_axis_parallel_matches_serial(self):
        sweep = SweepSpec.make(
            "test:plans-parallel",
            platforms=("hadoop", "graphlab"),
            algorithms=("bfs",),
            datasets=("amazon",),
            fault_plans=(
                named_plan("straggler", at=2.0, duration=3.0),
                named_plan("disk", at=1.0, duration=4.0),
            ),
        )
        serial = Runner().run_grid(sweep, workers=1)
        parallel = Runner().run_grid(sweep, workers=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert records_equal(a, b)


class TestObservability:
    def test_chaos_lifecycle_events(self):
        from repro import obs

        with obs.observed() as session:
            run_chaos_sweep(
                Runner(),
                templates=resolve_templates(["crash"]),
                platforms=("hadoop",),
                algorithms=("bfs",),
                datasets=("amazon",),
            )
        kinds = session.events.by_kind()
        assert kinds["chaos_sweep_started"] == 1
        assert kinds["chaos_cell"] == 1
        assert kinds["chaos_sweep_finished"] == 1
        cell_events = [
            e for e in session.events.events() if e.kind == "chaos_cell"
        ]
        assert cell_events[0].fields["cell"] == "hadoop/bfs/amazon"
        assert cell_events[0].fields["status"] == "ok"
        assert obs.active() is None


class TestExportAndCLI:
    def test_export_kind_chaos(self, report, tmp_path):
        from repro.core.export import export

        path = tmp_path / "chaos.json"
        export(report, kind="chaos", path=path)
        doc = json.loads(path.read_text())
        assert doc["report"] == report.name
        assert len(doc["frontier"]) == len(PLATFORMS)
        with pytest.raises(TypeError, match="expects ChaosReport"):
            export(object(), kind="chaos", path=tmp_path / "x.json")

    def test_cli_smoke_with_json_and_events(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "report.json"
        events_path = tmp_path / "events.jsonl"
        rc = main([
            "chaos-sweep",
            "--plans", "crash", "straggler",
            "--platforms", "hadoop", "graphlab",
            "--algorithms", "bfs",
            "--datasets", "amazon",
            "--workers", "2",
            "--json", str(json_path),
            "--events", str(events_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Availability / recovery-cost frontier" in out
        assert "harness events" in out
        doc = json.loads(json_path.read_text())
        assert doc["workers"] == 2
        assert doc["summary"]["cells"] == 4
        kinds = {
            json.loads(line)["kind"]
            for line in events_path.read_text().splitlines()
        }
        assert {"chaos_sweep_started", "chaos_cell",
                "chaos_sweep_finished"} <= kinds

    def test_cli_strict_fails_on_killed_cells(self, capsys):
        from repro.cli import main

        rc = main([
            "chaos-sweep", "--plans", "crash",
            "--platforms", "giraph", "--algorithms", "bfs",
            "--datasets", "amazon", "--strict",
        ])
        assert rc == 1
        assert "Killed cells:" in capsys.readouterr().out

    def test_cli_rejects_unknown_plan(self, capsys):
        from repro.cli import main

        rc = main(["chaos-sweep", "--plans", "gremlins"])
        assert rc == 2
        assert "unknown plan" in capsys.readouterr().err
