"""Compiled kernel tier: dispatch mechanics and bit-identity.

The contract of ``repro.kernels`` is *bit identity*: the compiled tier
must produce byte-for-byte the same arrays as the numpy reference tier
for every kernel, and therefore byte-identical ``WorkerStepCosts``,
``JobResult``s, and memo counters for every platform x algorithm pair.
The property tests here exercise the compiled loop bodies directly —
they are plain Python until numba jits them in place, so the loop
logic is testable (slowly) even on machines without numba, and the
same tests compare real jitted kernels on machines with it.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.spec import das4_cluster
from repro.graph.builder import from_edges
from repro.graph.partition import greedy_partition, hash_partition
from repro.kernels import (
    BACKEND_CHOICES,
    ENV_VAR,
    KERNEL_DESCRIPTIONS,
    active_backend,
    backend_summary,
    compiled_tier_loaded,
    list_kernels,
    requested_backend,
    use_backend,
)
from repro.kernels import _compiled, _numpy
from repro.platforms.base import PartitionContext
from repro.platforms.registry import (
    PLATFORM_NAMES,
    clear_context_caches,
    context_memo_stats,
    get_platform,
)
from repro.platforms.scale import ScaleModel

TRAVERSAL_ALGORITHMS = ("bfs", "conn", "sssp")


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=70):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    directed = draw(st.booleans())
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2), directed


def _graph(spec, name="hyp"):
    n, edges, directed = spec
    return from_edges(n, edges, directed=directed, name=name)


def _bytes_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


# -- per-kernel bit identity: numpy tier vs compiled tier ---------------------


@given(spec=edge_lists(), num_parts=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_part_bincount_bit_identical(spec, num_parts):
    n, _, _ = spec
    rng = np.random.default_rng(n)
    parts = rng.integers(0, num_parts, size=n)
    weights = rng.random(n) * 10
    ref = _numpy.part_bincount(parts, weights, num_parts)
    got = _compiled.part_bincount(parts, weights, num_parts)
    # np.bincount accumulates float64 weights in element order; the
    # compiled loop does the same, so identity is exact, not approximate.
    assert _bytes_equal(ref, got)


@given(spec=edge_lists(), num_parts=st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_comm_degrees_bit_identical(spec, num_parts):
    g = _graph(spec)
    assign = hash_partition(g, num_parts).assignment
    ref_out, ref_in = _numpy.comm_degrees(
        g.out_indptr, g.out_indices, assign, g.directed
    )
    got_out, got_in = _compiled.comm_degrees(
        g.out_indptr, g.out_indices, assign, g.directed
    )
    assert _bytes_equal(ref_out, got_out)
    assert _bytes_equal(ref_in, got_in)


@given(spec=edge_lists(), num_parts=st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cut_count_bit_identical(spec, num_parts):
    g = _graph(spec)
    assign = hash_partition(g, num_parts).assignment
    ref = _numpy.cut_count(g.out_indptr, g.out_indices, assign)
    got = _compiled.cut_count(g.out_indptr, g.out_indices, assign)
    assert int(ref) == int(got)


@given(spec=edge_lists(), data=st.data())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_gather_kernels_bit_identical(spec, data):
    g = _graph(spec)
    k = data.draw(st.integers(min_value=0, max_value=g.num_vertices))
    frontier = np.sort(
        data.draw(
            st.permutations(range(g.num_vertices))
        )[:k]
    ).astype(np.int64)
    ref = _numpy.gather_neighbors(g.out_indptr, g.out_indices, frontier)
    got = _compiled.gather_neighbors(g.out_indptr, g.out_indices, frontier)
    assert _bytes_equal(ref, got)
    ref_src, ref_dst = _numpy.gather_with_sources(
        g.out_indptr, g.out_indices, frontier
    )
    got_src, got_dst = _compiled.gather_with_sources(
        g.out_indptr, g.out_indices, frontier
    )
    assert _bytes_equal(ref_src, got_src)
    assert _bytes_equal(ref_dst, got_dst)


@given(
    n=st.integers(min_value=1, max_value=40),
    m=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_scatter_min_bit_identical(n, m):
    rng = np.random.default_rng(n * 1000 + m)
    idx = rng.integers(0, n, size=m)
    values = rng.random(m) * 8
    ref = np.full(n, np.inf)
    got = ref.copy()
    _numpy.scatter_min(ref, idx, values)
    _compiled.scatter_min(got, idx, values)
    assert _bytes_equal(ref, got)


@given(spec=edge_lists(), num_parts=st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ldg_assign_bit_identical(spec, num_parts):
    g = _graph(spec)
    degree = np.asarray(g.degree(), dtype=np.int64)
    weight = np.maximum(degree, 1)
    capacity = 1.05 * float(weight.sum()) / num_parts
    order = np.argsort(-degree, kind="stable")
    args = (
        g.out_indptr, g.out_indices, g.in_indptr, g.in_indices,
        g.directed, order, weight, capacity, num_parts,
    )
    # The loop replicates the lexsort tie-break exactly (max score,
    # then min load, then min part index), so assignments are equal —
    # not merely equally balanced.
    assert _bytes_equal(_numpy.ldg_assign(*args), _compiled.ldg_assign(*args))


# -- platform x algorithm bit identity through the dispatch layer -------------


def _run_all_platforms(algo_name, g, params):
    clear_context_caches()
    cluster = das4_cluster()
    results = {}
    for name in PLATFORM_NAMES:
        job = get_platform(name).run(algo_name, g, cluster, **params)
        results[name] = (job.execution_time, job.breakdown, job.supersteps)
    return results, context_memo_stats()


@pytest.mark.parametrize("algo_name", TRAVERSAL_ALGORITHMS)
@given(spec=edge_lists())
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_platform_results_identical_across_backends(algo_name, spec):
    from repro.algorithms.base import get_algorithm

    g = _graph(spec)
    algo = get_algorithm(algo_name)
    params = algo.default_params(g)

    with use_backend("numpy"):
        ref, ref_stats = _run_all_platforms(algo_name, g, params)
    with use_backend("compiled"):
        got, got_stats = _run_all_platforms(algo_name, g, params)

    for name in PLATFORM_NAMES:
        assert ref[name] == got[name], name
    # Same memo behaviour too: the tiers may not change how often the
    # context/step caches hit.
    assert ref_stats == got_stats


@pytest.mark.parametrize("algo_name", TRAVERSAL_ALGORITHMS)
@given(spec=edge_lists())
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_step_costs_identical_across_backends(algo_name, spec):
    from repro.algorithms.base import get_algorithm, record_trace

    g = _graph(spec)
    algo = get_algorithm(algo_name)
    params = algo.default_params(g)
    trace = record_trace(algo.program(g, **params), g, algorithm=algo_name)

    def charge():
        ctx = PartitionContext(g, hash_partition(g, 4), ScaleModel())
        return [ctx.step_costs(rep) for rep in trace.reports]

    with use_backend("numpy"):
        ref = charge()
    with use_backend("compiled"):
        got = charge()
    for rc, gc in zip(ref, got):
        assert _bytes_equal(rc.compute_edges, gc.compute_edges)
        assert _bytes_equal(rc.messages, gc.messages)
        assert _bytes_equal(rc.sent_bytes, gc.sent_bytes)
        assert _bytes_equal(rc.remote_sent_bytes, gc.remote_sent_bytes)
        assert _bytes_equal(rc.received_bytes, gc.received_bytes)


@given(spec=edge_lists(), num_parts=st.integers(min_value=1, max_value=5))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_greedy_partition_identical_across_backends(spec, num_parts):
    g = _graph(spec)
    with use_backend("numpy"):
        ref = greedy_partition(g, num_parts)
    with use_backend("compiled"):
        got = greedy_partition(g, num_parts)
    assert _bytes_equal(ref.assignment, got.assignment)
    assert ref.cut_edges() == got.cut_edges()


# -- dispatch layer mechanics -------------------------------------------------


class TestDispatch:
    def test_introspection_surface(self):
        assert requested_backend() in BACKEND_CHOICES
        assert active_backend() in ("numpy", "numba")
        assert isinstance(compiled_tier_loaded(), bool)
        assert (active_backend() == "numba") == compiled_tier_loaded()
        summary = backend_summary()
        assert active_backend() in summary

    def test_list_kernels_covers_every_dispatch_entry(self):
        listed = list_kernels()
        assert [name for name, _ in listed] == sorted(KERNEL_DESCRIPTIONS)
        for _, desc in listed:
            assert "[backend:" in desc

    def test_every_loop_exists_in_both_tiers(self):
        for name in KERNEL_DESCRIPTIONS:
            assert callable(getattr(_numpy, name))
            assert callable(getattr(_compiled, name))

    def test_use_backend_swaps_and_restores(self):
        before = active_backend()
        with use_backend("numpy"):
            assert active_backend() == "numpy"
        assert active_backend() == before

    def test_use_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel tier"):
            with use_backend("fortran"):
                pass  # pragma: no cover

    def _spawn(self, env_value):
        env = {"PYTHONPATH": "src", ENV_VAR: env_value, "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-c",
             "from repro.kernels import active_backend; print(active_backend())"],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_env_numpy_pins_fallback_tier(self):
        proc = self._spawn("numpy")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "numpy"

    def test_env_invalid_value_fails_import(self):
        proc = self._spawn("fortran")
        assert proc.returncode != 0
        assert ENV_VAR in proc.stderr

    def test_env_numba_without_numba_is_loud(self):
        import importlib.util

        if importlib.util.find_spec("numba") is not None:
            pytest.skip("numba installed: explicit request would succeed")
        proc = self._spawn("numba")
        assert proc.returncode != 0
        assert "perf" in proc.stderr  # points at the pip extra


def test_cli_list_kernels(capsys):
    from repro.cli import main

    assert main(["list", "kernels"]) == 0
    out = capsys.readouterr().out
    for name in KERNEL_DESCRIPTIONS:
        assert name in out
    assert "backend" in out
