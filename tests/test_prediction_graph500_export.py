"""Tests for the boundary-prediction model, the Graph500 harness, and
the export module."""

import json

import numpy as np
import pytest

from repro.cluster.spec import das4_cluster
from repro.core.export import (
    export_records_json,
    export_series_dat,
    export_trace_csv,
    record_to_dict,
)
from repro.core.graph500 import (
    Graph500Result,
    ValidationError,
    _bfs_parent_tree,
    run_graph500,
    validate_bfs_tree,
)
from repro.core.prediction import (
    BoundaryModel,
    WorkloadFeatures,
    collect_training_data,
    features_for,
)
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec
from repro.datasets import load_dataset
from repro.platforms import get_platform


# ---------------------------------------------------------------- prediction
class TestWorkloadFeatures:
    def test_vector_shape(self):
        f = WorkloadFeatures(5, 1e6, 1e7, 1e8, 20, 1)
        assert f.vector().shape == (len(WorkloadFeatures.FEATURE_NAMES),)

    def test_features_for_registry_graph(self):
        f = features_for("bfs", load_dataset("kgs"))
        assert f.iterations >= 5
        assert f.half_edges > 1e7  # paper scale
        assert f.workers == 20


@pytest.mark.slow
class TestBoundaryModel:
    @pytest.fixture(scope="class")
    def hadoop_model(self):
        # Train on the per-iteration MapReduce workloads (BFS/CONN/CD
        # share the one-job-per-iteration structure the features see).
        cells = [
            (a, d)
            for a in ("bfs", "conn", "cd")
            for d in ("amazon", "wikitalk", "kgs", "dotaleague", "synth")
        ]
        train = collect_training_data("hadoop", cells)
        return BoundaryModel("hadoop").fit(train), train

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            BoundaryModel("x").fit([])

    def test_unfitted_predict_raises(self):
        f = WorkloadFeatures(5, 1e6, 1e7, 1e8, 20, 1)
        with pytest.raises(RuntimeError):
            BoundaryModel("x").predict(f)

    def test_training_fit_quality(self, hadoop_model):
        """Hadoop's cost structure is linear in the features; the fit
        should be tight on its own training data."""
        model, train = hadoop_model
        for feats, measured in train:
            predicted = model.predict(feats)
            assert predicted == pytest.approx(measured, rel=0.5)

    def test_boundary_covers_training(self, hadoop_model):
        model, train = hadoop_model
        for feats, measured in train:
            assert model.predict_worst(feats) >= measured * 0.999

    def test_heldout_prediction_within_factor_3(self, hadoop_model):
        model, _ = hadoop_model
        cluster = das4_cluster()
        for algo, ds in (("bfs", "citation"), ("conn", "citation")):
            g = load_dataset(ds)
            actual = get_platform("hadoop").run(algo, g, cluster).execution_time
            predicted = model.predict(features_for(algo, g, cluster))
            assert actual / 3 <= predicted <= actual * 3, (algo, ds)

    def test_uncovered_workload_class_violates_boundary(self):
        """EVO runs two MapReduce jobs per iteration — a structure the
        features cannot see.  A model trained without any two-job
        workload under-predicts it: the boundary is only as good as
        the training coverage (the 'empirically validated' caveat)."""
        cells = [("bfs", d) for d in ("amazon", "kgs", "dotaleague")]
        model = BoundaryModel("hadoop").fit(
            collect_training_data("hadoop", cells)
        )
        cluster = das4_cluster()
        g = load_dataset("kgs")
        actual = get_platform("hadoop").run("evo", g, cluster).execution_time
        assert model.predict_worst(features_for("evo", g, cluster)) < actual

    def test_boundary_covers_heldout_same_class(self, hadoop_model):
        """The boundary holds on held-out workloads of trained classes."""
        model, _ = hadoop_model
        cluster = das4_cluster()
        g = load_dataset("citation")
        actual = get_platform("hadoop").run("bfs", g, cluster).execution_time
        worst = model.predict_worst(features_for("bfs", g, cluster))
        assert worst >= actual * 0.8

    def test_describe(self, hadoop_model):
        model, _ = hadoop_model
        text = model.describe()
        assert "hadoop" in text and "worst_ratio" in text

    def test_giraph_model_differs_from_hadoop(self, hadoop_model):
        hadoop, _ = hadoop_model
        cells = [("bfs", d) for d in ("amazon", "kgs", "dotaleague")] + [
            ("conn", d) for d in ("amazon", "kgs", "dotaleague")
        ]
        giraph = BoundaryModel("giraph").fit(
            collect_training_data("giraph", cells)
        )
        # Hadoop's per-iteration cost coefficient dwarfs Giraph's.
        assert hadoop.coefficients[1] > 10 * abs(giraph.coefficients[1])


# ---------------------------------------------------------------- graph500
class TestGraph500:
    def test_run_small(self):
        res = run_graph500(scale=8, edge_factor=8, num_roots=4, seed=2)
        assert isinstance(res, Graph500Result)
        assert res.all_valid
        assert res.harmonic_mean_teps > 0
        assert len(res.teps) == 4

    def test_harmonic_mean_below_max(self):
        res = run_graph500(scale=8, edge_factor=8, num_roots=4, seed=2)
        assert res.harmonic_mean_teps <= max(res.teps) + 1e-9

    def test_parent_tree_valid(self, random_graph):
        parent = _bfs_parent_tree(random_graph, 0)
        validate_bfs_tree(random_graph, 0, parent)

    def test_parent_tree_valid_directed(self, random_digraph):
        parent = _bfs_parent_tree(random_digraph, 1)
        validate_bfs_tree(random_digraph, 1, parent)

    def test_detects_wrong_length(self, random_graph):
        with pytest.raises(ValidationError):
            validate_bfs_tree(random_graph, 0, np.zeros(3, dtype=np.int64))

    def test_detects_bad_root(self, random_graph):
        parent = _bfs_parent_tree(random_graph, 0)
        parent[0] = 5
        with pytest.raises(ValidationError):
            validate_bfs_tree(random_graph, 0, parent)

    def test_detects_cycle(self, path_graph):
        parent = _bfs_parent_tree(path_graph, 0)
        parent[1], parent[2] = 2, 1  # 1 <-> 2 cycle
        with pytest.raises(ValidationError, match="cycle"):
            validate_bfs_tree(path_graph, 0, parent)

    def test_detects_fake_edge(self, path_graph):
        parent = _bfs_parent_tree(path_graph, 0)
        parent[9] = 0  # 0-9 is not an edge of the path
        with pytest.raises(ValidationError):
            validate_bfs_tree(path_graph, 0, parent)

    def test_detects_wrong_span(self, tiny_undirected):
        parent = _bfs_parent_tree(tiny_undirected, 0)
        parent[5] = 5  # vertex 5 is NOT reachable, must not be in tree
        with pytest.raises(ValidationError):
            validate_bfs_tree(tiny_undirected, 0, parent)


# ---------------------------------------------------------------- export
class TestExport:
    @pytest.fixture(scope="class")
    def small_experiment(self):
        runner = Runner()
        exp = runner.run_grid(SweepSpec.make(
            "export-test",
            platforms=["giraph"],
            algorithms=["bfs"],
            datasets=["kgs"],
        ))
        exp.add(runner.run(RunSpec("giraph", "stats", "wikitalk")))  # a crash
        return exp

    def test_record_to_dict_ok(self, small_experiment):
        rec = small_experiment.records[0]
        d = record_to_dict(rec)
        assert d["status"] == "ok"
        assert d["execution_time"] > 0
        assert "breakdown" in d

    def test_record_to_dict_crash(self, small_experiment):
        d = record_to_dict(small_experiment.records[-1])
        assert d["status"] == "crashed"
        assert d["failure_reason"]

    def test_json_roundtrip(self, small_experiment, tmp_path):
        path = tmp_path / "results.json"
        export_records_json(small_experiment, path)
        doc = json.loads(path.read_text())
        assert doc["experiment"] == "export-test"
        assert len(doc["records"]) == 2

    def test_trace_csv(self, small_experiment, tmp_path):
        rec = small_experiment.records[0]
        path = tmp_path / "trace.csv"
        export_trace_csv(rec.result.trace, path, num_points=10)
        lines = path.read_text().splitlines()
        assert lines[0] == "node,metric,normalized_time,value"
        assert len(lines) > 10

    def test_series_dat(self, tmp_path):
        path = tmp_path / "fig.dat"
        export_series_dat(
            [20, 25, 30],
            {"hadoop": [10.0, 8.0, None], "giraph": [1.0, 0.9, 0.8]},
            path,
            x_label="machines",
        )
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# machines")
        assert "nan" in lines[3]


class TestGraph500Timing:
    def test_injected_timer_gives_deterministic_teps(self):
        """With a fake clock ticking 1 s per call, TEPS equals the
        traversed-edge count per root exactly."""
        ticks = iter(range(1000))

        res = run_graph500(
            scale=7, edge_factor=8, num_roots=3, seed=4,
            timer=lambda: float(next(ticks)),
        )
        # each BFS is bracketed by two clock reads 1 s apart
        for teps in res.teps:
            assert teps > 0
            assert teps == int(teps)  # whole edges per whole second

    def test_construction_time_from_timer(self):
        times = iter([10.0, 12.5] + [float(x) for x in range(100, 300)])
        res = run_graph500(
            scale=6, edge_factor=4, num_roots=2, seed=9,
            timer=lambda: next(times),
        )
        assert res.construction_seconds == pytest.approx(2.5)
