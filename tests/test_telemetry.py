"""Cost-provenance telemetry: spans reconstruct every charged second.

The contract under test (the observability layer's acceptance bar):

* for every platform x {bfs, conn} on Amazon, the sum of leaf cost
  spans equals ``execution_time`` to 1e-9 relative;
* ``JobResult.cost_breakdown()`` reproduces the paper's
  computation/overhead split (Figures 15-16) **bit-for-bit**;
* enabling telemetry never perturbs a charged cost — on/off runs are
  bit-identical;
* spans are monotonically ordered by simulated time and form a
  well-shaped job -> phase -> superstep -> cost tree;
* the ``repro trace`` CLI renders the tree and ``--json`` emits valid
  JSON Lines.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.base import get_algorithm, record_trace
from repro.core import telemetry
from repro.datasets import load_dataset
from repro.platforms.registry import get_platform

PLATFORMS = ["hadoop", "yarn", "stratosphere", "giraph", "graphlab", "neo4j"]
ALGORITHMS = ["bfs", "conn"]


@pytest.fixture(scope="module")
def amazon():
    return load_dataset("amazon")


@pytest.fixture(scope="module")
def traces(amazon):
    """One recorded superstep trace per algorithm, shared by every
    platform run in this module (record once, charge everywhere)."""
    out = {}
    for name in ALGORITHMS:
        algo = get_algorithm(name)
        prog = algo.program(amazon, **algo.default_params(amazon))
        out[name] = record_trace(prog, amazon, algorithm=name)
    return out


@pytest.fixture(scope="module")
def runs(amazon, traces):
    """(platform, algorithm) -> (telemetry-on result, telemetry-off
    result) for the full grid."""
    out = {}
    for pname in PLATFORMS:
        for aname in ALGORITHMS:
            with telemetry.enabled():
                on = get_platform(pname).run(
                    aname, amazon, trace=traces[aname]
                )
            off = get_platform(pname).run(aname, amazon, trace=traces[aname])
            out[(pname, aname)] = (on, off)
    return out


@pytest.mark.parametrize("pname", PLATFORMS)
@pytest.mark.parametrize("aname", ALGORITHMS)
class TestChargedCostProvenance:
    def test_leaf_spans_sum_to_execution_time(self, runs, pname, aname):
        on, _ = runs[(pname, aname)]
        assert on.telemetry is not None
        leaf = on.telemetry.leaf_total()
        assert leaf == pytest.approx(on.execution_time, rel=1e-9)

    def test_computation_split_is_bitwise(self, runs, pname, aname):
        on, _ = runs[(pname, aname)]
        bd = on.cost_breakdown()
        assert bd is not None
        # Not approx: the same floats added in the same order.
        assert bd.computation == on.computation_time
        assert bd.overhead == on.overhead_time

    def test_components_match_breakdown(self, runs, pname, aname):
        on, _ = runs[(pname, aname)]
        bd = on.cost_breakdown()
        for component, seconds in bd.components.items():
            assert component in on.breakdown
            assert seconds == pytest.approx(
                on.breakdown[component], rel=1e-9, abs=1e-12
            )
        # Breakdown entries without an emitting rule charged nothing.
        for component, seconds in on.breakdown.items():
            if component not in bd.components:
                assert seconds == pytest.approx(0.0, abs=1e-9)

    def test_telemetry_does_not_perturb_costs(self, runs, pname, aname):
        on, off = runs[(pname, aname)]
        assert on.execution_time == off.execution_time
        assert on.computation_time == off.computation_time
        assert on.breakdown == off.breakdown
        assert off.telemetry is None
        assert off.cost_breakdown() is None

    def test_span_tree_shape_and_time_order(self, runs, pname, aname):
        on, _ = runs[(pname, aname)]
        tele = on.telemetry
        spans = tele.spans
        assert spans[0].kind == "job"
        assert spans[0].parent_id is None
        # Emission order is monotone in simulated start time.
        t0s = [s.t0 for s in spans[1:]]
        assert all(a <= b + 1e-12 for a, b in zip(t0s, t0s[1:]))
        for s in spans[1:]:
            assert s.parent_id is not None
            parent = tele.span(s.parent_id)
            assert not parent.is_cost
            assert s.t1 >= s.t0
            if s.kind == "superstep":
                assert parent.kind == "phase"
        # Leaves carry full attribution.
        for leaf in tele.leaf_spans():
            assert leaf.attrs["rule"] == leaf.name
            assert "component" in leaf.attrs
            assert "computation" in leaf.attrs

    def test_rule_totals_cover_every_component(self, runs, pname, aname):
        on, _ = runs[(pname, aname)]
        tele = on.telemetry
        rules = tele.rule_totals()
        assert rules
        assert sum(rules.values()) == pytest.approx(
            tele.leaf_total(), rel=1e-9
        )


class TestSessionLifecycle:
    def test_disabled_by_default(self):
        assert not telemetry.is_enabled()
        assert telemetry.active() is None
        assert telemetry.begin_job(platform="x") is None

    def test_abandon_releases_slot_on_crash(self, amazon):
        from repro.platforms.base import PlatformCrash

        with telemetry.enabled():
            with pytest.raises(PlatformCrash):
                get_platform("giraph").run("stats", load_dataset("wikitalk"))
            # The crashed run's session must not leak into the next run.
            assert telemetry.active() is None
            result = get_platform("giraph").run("bfs", amazon)
        assert result.telemetry is not None
        assert result.telemetry.attrs["algorithm"] == "bfs"

    def test_nested_begin_keeps_outer_session(self):
        with telemetry.enabled():
            outer = telemetry.begin_job(platform="outer")
            assert outer is not None
            assert telemetry.begin_job(platform="inner") is None
            assert telemetry.active() is outer
            telemetry.abandon(outer)

    def test_des_event_counter(self):
        from repro.des import Simulator

        with telemetry.enabled():
            tele = telemetry.begin_job(kind="des")
            sim = Simulator()

            def proc():
                yield sim.timeout(1.0)
                yield sim.timeout(2.0)

            sim.process(proc())
            sim.run()
            assert tele.counters["des.events"] >= 2
            telemetry.abandon(tele)

    def test_trace_cache_counters_flow_into_session(self, amazon):
        from repro.core.trace_cache import TraceCache

        cache = TraceCache()
        algo = get_algorithm("bfs")
        with telemetry.enabled():
            tele = telemetry.begin_job(kind="cache")
            cache.get_or_record(algo, amazon)
            cache.get_or_record(algo, amazon)
            assert tele.counters["trace_cache.misses"] == 1
            assert tele.counters["trace_cache.hits"] == 1
            telemetry.abandon(tele)


class TestExportAndCli:
    def test_jsonl_export_round_trip(self, runs, tmp_path):
        on, _ = runs[("giraph", "bfs")]
        from repro.core.export import export

        path = tmp_path / "tele.jsonl"
        n = export(
            on.telemetry, path=path, extra_counters={"extra.counter": 3}
        )
        lines = path.read_text().splitlines()
        assert len(lines) == n
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["platform"] == "giraph"
        # satellite contract: schema version + recording-process
        # provenance, co-parseable with the obs events JSONL
        assert records[0]["schema"] == telemetry.TELEMETRY_SCHEMA
        assert records[0]["worker_id"] == on.telemetry.worker_id
        for r in records:
            if r["type"] == "counter" and r["name"] != "extra.counter":
                assert r["worker_id"] == on.telemetry.worker_id
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == len(on.telemetry.spans)
        leaf_sum = sum(
            r["seconds"] for r in spans if r["kind"] == "cost"
        )
        assert leaf_sum == pytest.approx(on.execution_time, rel=1e-9)
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["extra.counter"] == 3

    def test_cli_trace_renders_span_tree(self, capsys):
        from repro.cli import main

        rc = main([
            "trace", "--platform", "neo4j", "--algorithm", "bfs",
            "--dataset", "amazon",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job neo4j/bfs/amazon" in out
        assert "phase traversal" in out
        assert "traversal_ops" in out
        assert "computation (Tc)" in out
        assert "top 8 cost rules:" in out
        assert "trace_cache" not in out  # counters section uses stats keys
        assert "misses" in out

    def test_cli_trace_json_is_consumable(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "out.jsonl"
        rc = main([
            "trace", "--platform", "graphlab", "--algorithm", "conn",
            "--dataset", "amazon", "--json", str(path),
        ])
        capsys.readouterr()
        assert rc == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = {r["type"] for r in records}
        assert kinds == {"meta", "span", "counter"}
        # Runner cache stats are folded in as counters.
        names = {r["name"] for r in records if r["type"] == "counter"}
        assert "misses" in names
        # Telemetry is disabled again after the CLI run.
        assert telemetry.active() is None
        assert not telemetry.is_enabled()


class TestFaultTelemetry:
    """Telemetry under fault injection: markers are free, recovery is
    charged, and enabling telemetry never perturbs a faulted run."""

    @pytest.fixture(scope="class")
    def faulted(self, amazon, traces):
        from repro.des.faults import named_plan

        plat = get_platform("hadoop")
        base = plat.run("bfs", amazon, trace=traces["bfs"])
        plan = named_plan("crash", at=0.5 * base.execution_time, node=2)
        with telemetry.enabled():
            on = plat.run("bfs", amazon, trace=traces["bfs"],
                          fault_plan=plan)
        off = plat.run("bfs", amazon, trace=traces["bfs"], fault_plan=plan)
        return base, on, off

    def test_telemetry_on_off_bit_identical_under_faults(self, faulted):
        _, on, off = faulted
        assert on.execution_time == off.execution_time
        assert on.computation_time == off.computation_time
        assert on.breakdown == off.breakdown
        assert on.task_retries == off.task_retries
        assert on.recovery_seconds == off.recovery_seconds
        assert off.telemetry is None

    def test_fault_markers_are_zero_cost(self, faulted):
        _, on, _ = faulted
        tele = on.telemetry
        markers = tele.fault_spans()
        assert len(markers) == 1
        marker = markers[0]
        assert marker.seconds == 0.0
        assert marker.attrs["fault_kind"] == "node_crash"
        assert marker.attrs["node"] == 2
        assert marker.attrs["recovery"] == "task_retry"

    def test_leaf_sums_still_reconstruct_faulted_time(self, faulted):
        _, on, _ = faulted
        tele = on.telemetry
        assert tele.leaf_total() == pytest.approx(
            on.execution_time, rel=1e-9
        )
        recovery = [
            s for s in tele.leaf_spans()
            if s.attrs.get("component") == "recovery"
        ]
        assert recovery
        assert sum(s.seconds for s in recovery) == pytest.approx(
            on.recovery_seconds, rel=1e-9
        )

    def test_job_attrs_carry_the_plan(self, faulted):
        _, on, _ = faulted
        assert on.telemetry.attrs["fault_plan"] == "crash"
        assert on.fault_plan == "crash"


class TestResourceTraceAttribution:
    def test_records_carry_span_ids(self, runs):
        on, _ = runs[("stratosphere", "bfs")]
        from repro.cluster.monitoring import worker_node

        peak = on.trace.peak_attribution(worker_node(0), "net_in")
        assert peak["value"] > 0
        assert peak["contributors"]
        value, t0, t1, span_id = peak["contributors"][0]
        assert span_id is not None
        span = on.telemetry.span(span_id)
        assert span.is_cost
        assert span.name == "net_transfer"
