"""Tests for platform model options: Giraph combiners/checkpointing,
MapReduce block-driven map scheduling."""

import pytest

from repro.cluster.spec import das4_cluster
from repro.datasets import load_dataset
from repro.platforms import PlatformCrash
from repro.platforms.giraph import Giraph
from repro.platforms.hadoop import Hadoop


class TestGiraphCombiner:
    def test_combiner_reduces_time_on_combinable(self):
        g = load_dataset("dotaleague")
        c = das4_cluster()
        plain = Giraph().run("bfs", g, c).execution_time
        combined = Giraph(use_combiner=True).run("bfs", g, c).execution_time
        assert combined <= plain

    def test_combiner_rescues_friendster_bfs(self):
        """A min-combiner shrinks the superstep buffers enough to fit
        Friendster at 20 workers — the standard production fix for the
        paper's crash."""
        g = load_dataset("friendster")
        c = das4_cluster()
        with pytest.raises(PlatformCrash):
            Giraph().run("bfs", g, c)
        result = Giraph(use_combiner=True).run("bfs", g, c)
        assert result.execution_time > 0

    def test_combiner_does_not_change_output(self, random_graph, small_cluster):
        a = Giraph().run("bfs", random_graph, small_cluster)
        b = Giraph(use_combiner=True).run("bfs", random_graph, small_cluster)
        import numpy as np

        assert np.array_equal(a.output, b.output)

    def test_combiner_ignored_for_uncombinable(self, small_cluster):
        """CD messages carry labels+scores that cannot be merged."""
        g = load_dataset("kgs")
        a = Giraph().run("cd", g, small_cluster).execution_time
        b = Giraph(use_combiner=True).run("cd", g, small_cluster).execution_time
        assert b == pytest.approx(a)

    def test_combiner_does_not_rescue_stats(self):
        """STATS messages (whole neighbor lists) are not combinable, so
        the WikiTalk crash remains."""
        g = load_dataset("wikitalk")
        with pytest.raises(PlatformCrash):
            Giraph(use_combiner=True).run("stats", g, das4_cluster())


class TestGiraphCheckpointing:
    def test_checkpoint_adds_overhead(self):
        g = load_dataset("kgs")
        c = das4_cluster()
        plain = Giraph().run("bfs", g, c)
        ckpt = Giraph(checkpoint_interval=2).run("bfs", g, c)
        assert ckpt.execution_time > plain.execution_time
        assert ckpt.breakdown["checkpoint"] > 0

    def test_zero_interval_means_off(self):
        g = load_dataset("kgs")
        r = Giraph(checkpoint_interval=0).run("bfs", g, das4_cluster())
        assert "checkpoint" not in r.breakdown

    def test_sparser_checkpoints_cost_less(self):
        g = load_dataset("kgs")
        c = das4_cluster()
        dense = Giraph(checkpoint_interval=1).run("bfs", g, c)
        sparse = Giraph(checkpoint_interval=4).run("bfs", g, c)
        assert sparse.breakdown["checkpoint"] < dense.breakdown["checkpoint"]

    def test_output_unchanged(self, random_graph, small_cluster):
        import numpy as np

        a = Giraph().run("conn", random_graph, small_cluster)
        b = Giraph(checkpoint_interval=1).run("conn", random_graph, small_cluster)
        assert np.array_equal(a.output, b.output)


class TestMapReduceBlockScheduling:
    def _block_hadoop(self) -> Hadoop:
        h = Hadoop()
        h.pin_blocks_to_slots = False
        return h

    def test_block_mode_never_faster(self):
        """The paper's pinned-block configuration is the optimum: the
        64 MB-block schedule adds wave rounding."""
        g = load_dataset("friendster")
        c = das4_cluster()
        pinned = Hadoop().run("bfs", g, c).execution_time
        blocks = self._block_hadoop().run("bfs", g, c).execution_time
        assert blocks >= pinned * 0.99

    def test_block_mode_output_identical(self, random_graph, small_cluster):
        import numpy as np

        a = Hadoop().run("bfs", random_graph, small_cluster)
        b = self._block_hadoop().run("bfs", random_graph, small_cluster)
        assert np.array_equal(a.output, b.output)

    def test_wave_makespan_exact(self):
        """10 unit tasks over 3 slots = 4 waves."""
        assert Hadoop._wave_makespan([1.0] * 10, 3) == pytest.approx(4.0)

    def test_wave_makespan_heterogeneous(self):
        # one long task dominates
        assert Hadoop._wave_makespan([5.0, 1.0, 1.0], 2) == pytest.approx(5.0)

    def test_wave_makespan_empty(self):
        assert Hadoop._wave_makespan([], 4) == 0.0


class TestGiraphOutOfCore:
    """Out-of-core execution (the Giraph 1.0 feature that later fixed
    the paper's OOM cells) trades crashes for disk traffic."""

    def test_rescues_friendster_bfs(self):
        from repro.datasets import load_dataset

        g = load_dataset("friendster")
        c = das4_cluster()
        with pytest.raises(PlatformCrash):
            Giraph().run("bfs", g, c)
        r = Giraph(out_of_core=True).run("bfs", g, c)
        assert r.execution_time > 0

    def test_rescues_stats_wikitalk(self):
        from repro.datasets import load_dataset

        g = load_dataset("wikitalk")
        r = Giraph(out_of_core=True).run("stats", g, das4_cluster())
        assert r.execution_time > 0

    def test_slower_than_combiner_on_friendster(self):
        """Spilling the overflow costs more than not creating it."""
        from repro.datasets import load_dataset

        g = load_dataset("friendster")
        c = das4_cluster()
        ooc = Giraph(out_of_core=True).run("bfs", g, c).execution_time
        comb = Giraph(use_combiner=True).run("bfs", g, c).execution_time
        assert ooc > comb

    def test_no_cost_when_memory_fits(self):
        from repro.datasets import load_dataset

        g = load_dataset("kgs")
        c = das4_cluster()
        plain = Giraph().run("bfs", g, c).execution_time
        ooc = Giraph(out_of_core=True).run("bfs", g, c).execution_time
        assert ooc == pytest.approx(plain)

    def test_output_unchanged(self, random_graph, small_cluster):
        import numpy as np

        a = Giraph().run("conn", random_graph, small_cluster)
        b = Giraph(out_of_core=True).run("conn", random_graph, small_cluster)
        assert np.array_equal(a.output, b.output)
