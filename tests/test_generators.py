"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    citation_dag,
    configuration_powerlaw,
    erdos_renyi,
    forest_fire,
    graph500_kronecker,
    hub_graph,
    planted_partition,
    preferential_attachment,
    rmat_edges,
    watts_strogatz,
)
from repro.graph.generators.forest_fire import forest_fire_extend


class TestKronecker:
    def test_vertex_count_power_of_two(self):
        g = graph500_kronecker(8, 8, seed=1)
        assert g.num_vertices == 256

    def test_edge_factor_respected_approximately(self):
        g = graph500_kronecker(10, 16, seed=2)
        # dedupe and self-loop removal lose some edges
        assert 0.5 * 16 * 1024 <= g.num_edges <= 16 * 1024

    def test_deterministic(self):
        a = graph500_kronecker(8, 8, seed=5)
        b = graph500_kronecker(8, 8, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = graph500_kronecker(8, 8, seed=5)
        b = graph500_kronecker(8, 8, seed=6)
        assert a != b

    def test_degree_skew(self):
        """Kronecker graphs are heavy-tailed: max degree >> mean."""
        g = graph500_kronecker(11, 16, seed=3)
        deg = np.asarray(g.degree())
        assert deg.max() > 8 * deg.mean()

    def test_rmat_raw_shape(self):
        e = rmat_edges(6, 100, seed=1)
        assert e.shape == (100, 2)
        assert e.max() < 64

    def test_rmat_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 10, seed=1)

    def test_rmat_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, seed=1, a=0.5, b=0.4, c=0.4)

    def test_directed_variant(self):
        g = graph500_kronecker(8, 8, seed=1, directed=True)
        assert g.directed


class TestForestFire:
    def test_sizes(self):
        g = forest_fire(200, seed=1)
        assert g.num_vertices == 200
        assert g.num_edges >= 199  # at least a tree

    def test_deterministic(self):
        assert forest_fire(100, seed=3) == forest_fire(100, seed=3)

    def test_weakly_connected(self):
        import networkx as nx

        g = forest_fire(150, seed=2)
        assert nx.is_weakly_connected(g.to_networkx())

    def test_densification_with_higher_p(self):
        sparse = forest_fire(200, p_forward=0.1, seed=4)
        dense = forest_fire(200, p_forward=0.5, seed=4)
        assert dense.num_edges > sparse.num_edges

    def test_extend_grows_graph(self, random_graph):
        evolved, new_edges = forest_fire_extend(random_graph, 20, seed=5)
        assert evolved.num_vertices == random_graph.num_vertices + 20
        assert new_edges >= 20
        assert evolved.num_edges >= random_graph.num_edges

    def test_extend_preserves_directivity(self, random_digraph):
        evolved, _ = forest_fire_extend(random_digraph, 5, seed=6)
        assert evolved.directed


class TestPreferential:
    def test_sizes(self):
        g = preferential_attachment(500, 3, seed=1)
        assert g.num_vertices == 500
        # each of ~497 new vertices adds up to 3 edges + seed clique
        assert 400 <= g.num_edges <= 3 * 500 + 10

    def test_rich_get_richer(self):
        g = preferential_attachment(1000, 2, seed=2)
        deg = np.asarray(g.degree())
        assert deg.max() > 10 * deg.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment(5, 0)
        with pytest.raises(ValueError):
            preferential_attachment(3, 5)

    def test_connected(self):
        import networkx as nx

        g = preferential_attachment(300, 2, seed=3)
        assert nx.is_connected(g.to_networkx())


class TestRandomGraphs:
    def test_er_edge_count(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_edges == 300

    def test_er_directed(self):
        g = erdos_renyi(100, 300, directed=True, seed=1)
        assert g.directed and g.num_edges == 300

    def test_ws_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 6, 0.1)  # k >= n

    def test_ws_zero_rewire_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        deg = np.asarray(g.degree())
        assert np.all(deg == 4)

    def test_ws_clustering_drops_with_rewiring(self):
        from repro.graph.properties import mean_local_clustering

        ordered = watts_strogatz(300, 6, 0.0, seed=2)
        chaotic = watts_strogatz(300, 6, 1.0, seed=2)
        assert mean_local_clustering(ordered) > mean_local_clustering(chaotic)


class TestCommunityAndHubs:
    def test_planted_partition_sizes(self):
        g = planted_partition(400, 8, 20, 2, seed=1)
        assert g.num_vertices == 400
        assert g.num_edges > 400

    def test_planted_partition_modularity(self):
        """Intra-community edges dominate."""
        g = planted_partition(400, 8, 30, 1, seed=2)
        comm = np.arange(400) * 8 // 400
        src = np.repeat(np.arange(400), np.diff(g.out_indptr))
        dst = g.out_indices
        intra = np.mean(comm[src] == comm[dst])
        assert intra > 0.8

    def test_planted_validation(self):
        with pytest.raises(ValueError):
            planted_partition(10, 0, 1, 1)

    def test_hub_graph_max_degree(self):
        g = hub_graph(1000, 4, 200, seed=1)
        deg = np.asarray(g.degree())
        assert deg.max() >= 150  # hubs dominate

    def test_hub_graph_validation(self):
        with pytest.raises(ValueError):
            hub_graph(5, 10, 3)

    def test_configuration_powerlaw(self):
        g = configuration_powerlaw(500, 2.2, seed=1)
        deg = np.asarray(g.degree())
        assert deg.max() > 3 * max(deg.mean(), 1)

    def test_powerlaw_exponent_validation(self):
        from repro.graph.generators.powerlaw import powerlaw_degree_sequence

        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 0.5)


class TestCitationDag:
    def test_is_dag(self):
        g = citation_dag(500, seed=1)
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.out_indptr))
        assert np.all(src > g.out_indices)  # all arcs point backward

    def test_directed(self):
        assert citation_dag(100, seed=1).directed

    def test_out_degree_mean(self):
        # landmark_spacing=1 disables snapping so citations rarely
        # collide and the Poisson mean comes through
        g = citation_dag(3000, citations_per_vertex=4.0, dead_fraction=0.0,
                         landmark_spacing=1, seed=2)
        assert 3.0 <= g.num_edges / g.num_vertices <= 5.0

    def test_dead_zone_has_no_citations(self):
        g = citation_dag(1000, dead_fraction=0.3, seed=3)
        dead = int(1000 * 0.3)
        out_deg = np.asarray(g.out_degree())
        assert np.all(out_deg[:dead] == 0)

    def test_landmark_concentration(self):
        g = citation_dag(2000, landmark_spacing=64, seed=4)
        cited = np.unique(g.out_indices)
        assert np.all(cited % 64 == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            citation_dag(10, recency_window=0.0)
        with pytest.raises(ValueError):
            citation_dag(10, dead_fraction=1.0)
