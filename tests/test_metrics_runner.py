"""Tests for metrics, run records, and the experiment runner."""

import pytest

from repro.cluster.spec import das4_cluster
from repro.core.metrics import (
    job_metrics,
    normalized_eps,
    normalized_vps,
    paper_scale_eps,
    paper_scale_vps,
)
from repro.core.results import ExperimentResult, RunRecord, RunStatus
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec
from repro.datasets import PAPER_SPECS_TABLE2, load_dataset
from repro.platforms import get_platform


@pytest.fixture(scope="module")
def kgs_result():
    return get_platform("giraph").run("bfs", load_dataset("kgs"), das4_cluster())


class TestMetrics:
    def test_eps_uses_paper_edge_count(self, kgs_result):
        expected = PAPER_SPECS_TABLE2["kgs"].num_edges / kgs_result.execution_time
        assert paper_scale_eps(kgs_result) == pytest.approx(expected)

    def test_vps_uses_paper_vertex_count(self, kgs_result):
        expected = PAPER_SPECS_TABLE2["kgs"].num_vertices / kgs_result.execution_time
        assert paper_scale_vps(kgs_result) == pytest.approx(expected)

    def test_neps_by_nodes(self, kgs_result):
        assert normalized_eps(kgs_result) == pytest.approx(
            paper_scale_eps(kgs_result) / 20
        )

    def test_neps_by_cores(self):
        r = get_platform("giraph").run(
            "bfs", load_dataset("kgs"), das4_cluster(20, 4)
        )
        assert normalized_eps(r, per="cores") == pytest.approx(
            paper_scale_eps(r) / 80
        )

    def test_nvps(self, kgs_result):
        assert normalized_vps(kgs_result) == pytest.approx(
            paper_scale_vps(kgs_result) / 20
        )

    def test_bad_per(self, kgs_result):
        with pytest.raises(ValueError):
            normalized_eps(kgs_result, per="racks")

    def test_unregistered_graph_uses_own_counts(self, random_graph):
        r = get_platform("giraph").run("bfs", random_graph, das4_cluster(4))
        assert paper_scale_eps(r) == pytest.approx(
            random_graph.num_edges / r.execution_time
        )

    def test_job_metrics_consistency(self, kgs_result):
        m = job_metrics(kgs_result)
        assert m.execution_time == kgs_result.execution_time
        assert m.overhead_time == pytest.approx(
            m.execution_time - m.computation_time
        )
        assert 0 <= m.overhead_fraction <= 1
        assert m.supersteps == kgs_result.supersteps


class TestRunRecord:
    def test_describe_ok(self):
        rec = RunRecord("p", "a", "d", das4_cluster(), RunStatus.OK,
                        execution_time=12.345)
        assert rec.describe() == "12.3s"

    def test_describe_failures(self):
        crash = RunRecord("p", "a", "d", das4_cluster(), RunStatus.CRASHED)
        dnf = RunRecord("p", "a", "d", das4_cluster(), RunStatus.DNF)
        assert crash.describe() == "CRASH"
        assert dnf.describe() == "DNF"

    def test_variance_fraction(self):
        rec = RunRecord("p", "a", "d", das4_cluster(), RunStatus.OK,
                        execution_time=10.0, repetition_times=(9.0, 11.0, 10.0))
        assert rec.variance_fraction == pytest.approx(0.1)

    def test_variance_single_rep_is_zero(self):
        rec = RunRecord("p", "a", "d", das4_cluster(), RunStatus.OK,
                        execution_time=10.0, repetition_times=(10.0,))
        assert rec.variance_fraction == 0.0


class TestExperimentResult:
    def _populate(self):
        exp = ExperimentResult("x")
        for plat in ("hadoop", "giraph"):
            for ds in ("kgs", "amazon"):
                exp.add(RunRecord(plat, "bfs", ds, das4_cluster(),
                                  RunStatus.OK, execution_time=1.0))
        exp.add(RunRecord("giraph", "stats", "kgs", das4_cluster(),
                          RunStatus.CRASHED))
        return exp

    def test_find_by_keys(self):
        exp = self._populate()
        assert len(exp.find(platform="giraph")) == 3
        assert len(exp.find(platform="giraph", algorithm="bfs")) == 2
        assert len(exp.find(dataset="kgs", algorithm="bfs")) == 2

    def test_get_unique(self):
        exp = self._populate()
        rec = exp.get("hadoop", "bfs", "amazon")
        assert rec is not None and rec.platform == "hadoop"
        assert exp.get("neo4j", "bfs", "kgs") is None

    def test_distinct_listings(self):
        exp = self._populate()
        assert exp.platforms() == ["hadoop", "giraph"]
        assert exp.datasets() == ["kgs", "amazon"]
        assert exp.algorithms() == ["bfs", "stats"]

    def test_completed_filters_failures(self):
        exp = self._populate()
        assert len(exp.completed()) == 4
        assert len(exp) == 5


class TestRunner:
    def test_ok_cell(self):
        rec = Runner().run(RunSpec("giraph", "bfs", "kgs"))
        assert rec.status is RunStatus.OK
        assert rec.execution_time and rec.execution_time > 0
        assert rec.result is not None

    def test_crash_cell(self):
        rec = Runner().run(RunSpec("giraph", "stats", "wikitalk"))
        assert rec.status is RunStatus.CRASHED
        assert "heap" in rec.failure_reason

    def test_dnf_cell(self):
        rec = Runner().run(RunSpec("neo4j", "stats", "dotaleague"))
        assert rec.status is RunStatus.DNF
        assert "budget" in rec.failure_reason

    def test_repetitions_recorded(self):
        rec = Runner(repetitions=3).run(RunSpec("giraph", "bfs", "kgs"))
        assert len(rec.repetition_times) == 3

    def test_jitter_gives_variance_below_10_percent(self):
        """The paper reports 'the largest variance for 10%'."""
        rec = Runner(repetitions=10, jitter=0.02, seed=5).run(RunSpec(
            "giraph", "bfs", "kgs"
        ))
        assert 0 < rec.variance_fraction < 0.10

    def test_deterministic_without_jitter(self):
        a = Runner().run(RunSpec("giraph", "bfs", "kgs")).execution_time
        b = Runner().run(RunSpec("giraph", "bfs", "kgs")).execution_time
        assert a == b

    def test_graph_object_accepted(self, random_graph):
        rec = Runner().run(RunSpec("giraph", "bfs", random_graph, das4_cluster(4)))
        assert rec.status is RunStatus.OK
        assert rec.dataset == random_graph.name

    def test_grid(self):
        exp = Runner().run_grid(SweepSpec.make(
            "g", platforms=["giraph", "graphlab"],
            algorithms=["bfs"], datasets=["kgs", "amazon"],
        ))
        assert len(exp) == 4
        assert exp.get("graphlab", "bfs", "amazon") is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            Runner(repetitions=0)
        with pytest.raises(ValueError):
            Runner(jitter=-0.1)
