"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import bfs_levels
from repro.algorithms.cd import _segment_argmax_label
from repro.algorithms.conn import ConnProgram
from repro.des import Simulator
from repro.graph.builder import from_edges
from repro.graph.io import graph_from_text, graph_to_text
from repro.graph.partition import greedy_partition, hash_partition, range_partition

# -- strategies -------------------------------------------------------------


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120, directed=None):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    if directed is None:
        directed = draw(st.booleans())
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2), directed


def _build(n, edges, directed):
    return from_edges(n, edges, directed=directed)


# -- CSR invariants ------------------------------------------------------------


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_degree_sum_invariant(spec):
    n, edges, directed = spec
    g = _build(n, edges, directed)
    assert int(np.sum(g.out_degree())) == g.num_half_edges
    if directed:
        assert int(np.sum(g.in_degree())) == g.num_half_edges
    else:
        assert g.num_half_edges == 2 * g.num_edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_neighbor_lists_sorted_unique(spec):
    n, edges, directed = spec
    g = _build(n, edges, directed)
    for v in range(n):
        nbrs = g.neighbors(v)
        assert np.all(np.diff(nbrs) > 0)


@given(edge_lists(directed=True))
@settings(max_examples=60, deadline=None)
def test_in_out_adjacency_are_transposes(spec):
    n, edges, _ = spec
    g = _build(n, edges, True)
    a_out = g.to_scipy("out")
    a_in = g.to_scipy("in")
    assert (a_out.T != a_in).nnz == 0


# -- text format round trip ------------------------------------------------------


@given(edge_lists())
@settings(max_examples=50, deadline=None)
def test_text_format_roundtrip(spec):
    n, edges, directed = spec
    g = _build(n, edges, directed)
    assert graph_from_text(graph_to_text(g)) == g


# -- BFS vs networkx -----------------------------------------------------------


@given(edge_lists(), st.data())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bfs_matches_networkx(spec, data):
    import networkx as nx

    n, edges, directed = spec
    g = _build(n, edges, directed)
    source = data.draw(st.integers(min_value=0, max_value=n - 1))
    levels = bfs_levels(g, source)
    truth = nx.single_source_shortest_path_length(g.to_networkx(), source)
    for v in range(n):
        assert levels[v] == truth.get(v, -1)


# -- CONN fixed point ------------------------------------------------------------


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_conn_labels_are_weak_component_minima(spec):
    import networkx as nx

    n, edges, directed = spec
    g = _build(n, edges, directed)
    prog = ConnProgram(g)
    for _ in prog:
        pass
    labels = prog.result()
    nxg = g.to_networkx()
    comps = (
        nx.weakly_connected_components(nxg)
        if directed
        else nx.connected_components(nxg)
    )
    for comp in comps:
        assert {int(labels[v]) for v in comp} == {min(comp)}


# -- partitioning -----------------------------------------------------------------


@given(edge_lists(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_partitions_cover_all_vertices(spec, k):
    n, edges, directed = spec
    g = _build(n, edges, directed)
    for part_fn in (hash_partition, range_partition, greedy_partition):
        p = part_fn(g, k)
        assert len(p.assignment) == n
        assert p.vertices_per_part().sum() == n
        assert 0 <= p.cut_fraction() <= 1.0


@given(edge_lists(), st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_cut_edges_counted_once(spec, k):
    """Manual edge-wise count agrees with Partition.cut_edges."""
    n, edges, directed = spec
    g = _build(n, edges, directed)
    p = hash_partition(g, k)
    a = p.assignment
    manual = 0
    seen = set()
    for v in range(n):
        for w in g.neighbors(v):
            key = (v, int(w)) if directed else (min(v, int(w)), max(v, int(w)))
            if key in seen:
                continue
            seen.add(key)
            if a[v] != a[w]:
                manual += 1
    assert p.cut_edges() == manual


# -- CD segment argmax -------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),  # receiver
            st.integers(min_value=0, max_value=9),  # label
            st.floats(min_value=0.01, max_value=10.0),  # weight
        ),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_segment_argmax_matches_bruteforce(triples):
    n = 10
    if triples:
        r = np.array([t[0] for t in triples])
        l = np.array([t[1] for t in triples])
        w = np.array([t[2] for t in triples])
    else:
        r = np.array([], dtype=int)
        l = np.array([], dtype=int)
        w = np.array([])
    best, weight = _segment_argmax_label(r, l, w, n)
    # brute force
    for v in range(n):
        totals = {}
        for rr, ll, ww in triples:
            if rr == v:
                totals[ll] = totals.get(ll, 0.0) + ww
        if not totals:
            assert best[v] == -1
        else:
            top = max(totals.values())
            winners = sorted(k for k, val in totals.items()
                             if abs(val - top) < 1e-9)
            assert best[v] in winners
            assert weight[v] == np.float64(totals[best[v]])


# -- DES determinism ------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
@settings(max_examples=50, deadline=None)
def test_des_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).add_callback(lambda ev, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0),
            st.floats(min_value=0.01, max_value=5.0),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_resource_serializes_work(tasks):
    """With capacity 1 the makespan is the sum of all service times."""
    from repro.des import Resource

    sim = Simulator()
    res = Resource(sim, capacity=1)

    def job(arrival, service):
        yield sim.timeout(arrival)
        with res.request() as req:
            yield req
            yield sim.timeout(service)

    procs = [sim.process(job(a, s)) for a, s in tasks]
    sim.run(until=sim.all_of(procs))
    total_service = sum(s for _, s in tasks)
    assert sim.now >= total_service - 1e-9
