"""The ``graphbench serve`` HTTP service end to end.

Acceptance contract (ISSUE 10):

* a cached ``POST /v1/predict`` answer is **byte-identical** to what a
  direct ``Runner.run(spec)`` serializes to — the server adds an
  envelope, never a different answer;
* N concurrent identical requests trigger **exactly one** sweep — the
  coalescing counter says so and ``/metrics`` exposes it;
* ``/healthz`` and ``/metrics`` are live, and the exposition passes
  the strict Prometheus grammar validator from ``tests/test_obs``;
* overload answers ``429 + Retry-After``; deadline expiry answers
  ``504`` while the computation still warms the cache for the retry.

Each test runs a real server on a fresh event loop bound to an
ephemeral port and talks to it over actual sockets — no handler
short-circuiting.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import PredictRequest, PredictResponse, canonical_json
from repro.core.runner import Runner
from repro.serve import GraphbenchServer
from tests.test_obs import _validate_prometheus

CELL = {"platform": "neo4j", "algorithm": "bfs", "dataset": "amazon"}


async def _request(
    port: int, method: str, path: str, body: dict | bytes | None = None
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP exchange against the server (connections are one-shot,
    so read-to-EOF is the framing)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    if body is None:
        data = b""
    elif isinstance(body, bytes):
        data = body
    else:
        data = json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\nContent-Length: {len(data)}\r\n\r\n"
        ).encode()
        + data
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


def _with_server(scenario, **server_kw):
    """Run ``await scenario(server)`` against a started server on a
    fresh loop; always tears the server down."""

    async def main():
        server = GraphbenchServer(**server_kw)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.aclose()

    return asyncio.run(main())


class TestPredictByteIdentity:
    def test_served_answer_is_byte_identical_to_runner(self):
        async def scenario(server):
            first = await _request(server.port, "POST", "/v1/predict", CELL)
            second = await _request(server.port, "POST", "/v1/predict", CELL)
            return first, second

        (s1, _, b1), (s2, _, b2) = _with_server(scenario)
        assert s1 == 200 and s2 == 200
        cold, warm = json.loads(b1), json.loads(b2)
        assert cold["api_version"] == 1
        assert cold["cached"] is False
        assert warm["cached"] is True
        # the answer itself never changes between cold and warm
        assert cold["result"] == warm["result"]

        # byte-identity with the library path: same runner defaults,
        # same spec, same canonical encoding
        request = PredictRequest(**CELL)
        direct = PredictResponse.from_record(
            Runner().run(request.to_run_spec())
        )
        assert canonical_json(warm["result"]) == direct.to_json()
        # and the serialized envelope embeds those exact bytes
        assert direct.to_json().encode() in b2

    def test_job_endpoint_replays_the_answer(self):
        async def scenario(server):
            _, _, body = await _request(
                server.port, "POST", "/v1/predict", CELL
            )
            job_id = json.loads(body)["job_id"]
            return json.loads(body), await _request(
                server.port, "GET", f"/v1/jobs/{job_id}"
            )

        envelope, (status, _, job_body) = _with_server(scenario)
        assert status == 200
        job = json.loads(job_body)
        assert job["state"] == "done"
        assert job["kind"] == "predict"
        assert job["result"] == envelope["result"]


class TestCoalescing:
    N = 6

    def test_n_identical_requests_run_exactly_one_sweep(self):
        async def scenario(server):
            responses = await asyncio.gather(*[
                _request(server.port, "POST", "/v1/predict", CELL)
                for _ in range(self.N)
            ])
            _, _, metrics = await _request(server.port, "GET", "/metrics")
            return responses, metrics.decode(), server.batcher.stats()

        responses, metrics_text, stats = _with_server(
            scenario, window_seconds=0.2
        )
        assert all(status == 200 for status, _, _ in responses)
        payloads = [json.loads(body) for _, _, body in responses]
        results = {canonical_json(p["result"]) for p in payloads}
        assert len(results) == 1  # every client got the same answer
        # exactly one sweep: 1 compute + (N-1) coalesced
        assert stats["batches"] == 1
        assert stats["coalesced"] == self.N - 1
        assert stats["requests"] == self.N

        families = _validate_prometheus(metrics_text)
        coalesced = families["graphbench_serve_coalesced_total"]
        assert coalesced["type"] == "counter"
        assert coalesced["samples"][0][2] == self.N - 1
        requested = families["graphbench_serve_requests_total"]
        assert requested["samples"][0][2] == self.N

    def test_distinct_cells_share_one_micro_batch(self):
        other = dict(CELL, platform="giraph")

        async def scenario(server):
            await asyncio.gather(
                _request(server.port, "POST", "/v1/predict", CELL),
                _request(server.port, "POST", "/v1/predict", other),
            )
            return server.batcher.stats()

        stats = _with_server(scenario, window_seconds=0.2)
        assert stats["batches"] == 1
        assert stats["coalesced"] == 0
        assert stats["requests"] == 2


class TestSweepJobs:
    def test_sweep_runs_as_background_job(self):
        payload = {
            "platforms": ["giraph", "neo4j"],
            "algorithms": ["bfs"],
            "datasets": ["amazon"],
            "name": "serve-sweep",
        }

        async def scenario(server):
            status, _, body = await _request(
                server.port, "POST", "/v1/sweep", payload
            )
            assert status == 202
            job_id = json.loads(body)["job_id"]
            for _ in range(200):
                _, _, job_body = await _request(
                    server.port, "GET", f"/v1/jobs/{job_id}"
                )
                job = json.loads(job_body)
                if job["state"] in ("done", "failed"):
                    return job
                await asyncio.sleep(0.05)
            raise AssertionError("sweep job never completed")

        job = _with_server(scenario)
        assert job["state"] == "done"
        assert job["kind"] == "sweep"
        assert job["result"]["name"] == "serve-sweep"
        assert len(job["result"]["cells"]) == 2
        assert {c["platform"] for c in job["result"]["cells"]} == {
            "giraph", "neo4j",
        }


class TestHealthAndMetrics:
    def test_healthz_reports_the_serving_stack(self):
        async def scenario(server):
            await _request(server.port, "POST", "/v1/predict", CELL)
            return await _request(server.port, "GET", "/healthz")

        status, headers, body = _with_server(scenario)
        assert status == 200
        assert headers["content-type"] == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["admission"]["max_pending"] == 64
        assert health["batching"]["requests"] == 1
        assert health["trace_cache"]["misses"] >= 1

    def test_metrics_pass_the_prometheus_grammar(self):
        async def scenario(server):
            await _request(server.port, "POST", "/v1/predict", CELL)
            return await _request(server.port, "GET", "/metrics")

        status, headers, body = _with_server(scenario)
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        families = _validate_prometheus(body.decode())
        for family in (
            "graphbench_serve_requests_total",
            "graphbench_serve_admitted_total",
            "graphbench_serve_batches_total",
            "graphbench_serve_request_latency_seconds",
            "graphbench_serve_answer_cache_hit_rate",
            "graphbench_serve_coalescing_ratio",
        ):
            assert family in families, f"missing {family}"


class TestProtocolErrors:
    def test_bad_json_is_400(self):
        async def scenario(server):
            return await _request(
                server.port, "POST", "/v1/predict", b"{nope"
            )

        status, _, body = _with_server(scenario)
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_uncoercible_field_type_is_400(self):
        async def scenario(server):
            return await _request(
                server.port, "POST", "/v1/predict",
                dict(CELL, scale="fast"),
            )

        status, _, body = _with_server(scenario)
        assert status == 400
        assert "bad PredictRequest field" in json.loads(body)["error"]

    def test_negative_content_length_is_400(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Host: test\r\nContent-Length: -5\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw = _with_server(scenario)
        assert int(raw.split()[1]) == 400

    def test_unexpected_batcher_failure_releases_the_slot(self):
        """An exception class _predict does not map to a status (e.g. a
        broken executor) must still return the admission slot; with
        max_pending=1 a leak would shed every later request as 429."""

        async def scenario(server):
            def boom(requests):
                raise RuntimeError("executor blew up")

            server.batcher._run_batch = boom
            failed = await _request(server.port, "POST", "/v1/predict", CELL)
            del server.batcher._run_batch  # back to the bound method
            recovered = await _request(
                server.port, "POST", "/v1/predict", CELL
            )
            return failed, recovered, server.admission.pending

        (s1, _, b1), (s2, _, _), pending = _with_server(
            scenario, max_pending=1
        )
        assert s1 == 500
        assert "executor blew up" in json.loads(b1)["error"]
        assert pending == 0
        assert s2 == 200

    def test_unknown_platform_is_400(self):
        async def scenario(server):
            return await _request(
                server.port, "POST", "/v1/predict",
                dict(CELL, platform="nosuch"),
            )

        status, _, _ = _with_server(scenario)
        assert status == 400

    def test_method_and_route_errors(self):
        async def scenario(server):
            return (
                await _request(server.port, "GET", "/v1/predict"),
                await _request(server.port, "GET", "/nope"),
                await _request(server.port, "GET", "/v1/jobs/job-404"),
            )

        (method, _, _), (route, _, _), (job, _, _) = _with_server(scenario)
        assert method == 405
        assert route == 404
        assert job == 404

    def test_overload_is_429_with_retry_after(self):
        async def scenario(server):
            # fill the admission gate so the next request is shed
            while server.admission.try_admit():
                pass
            return await _request(server.port, "POST", "/v1/predict", CELL)

        status, headers, body = _with_server(scenario, max_pending=2)
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert "capacity" in json.loads(body)["error"]

    def test_deadline_expiry_is_504_and_still_warms_the_cache(self):
        async def scenario(server):
            timed_out = await _request(
                server.port, "POST", "/v1/predict", CELL
            )
            # the shielded computation keeps running; a patient retry
            # gets the (eventually cached) answer
            server.admission.deadline_seconds = 30.0
            retried = await _request(server.port, "POST", "/v1/predict", CELL)
            return timed_out, retried, server.admission.timeouts_total

        (s1, _, b1), (s2, _, b2), timeouts = _with_server(
            scenario, deadline_seconds=0.01, window_seconds=0.3
        )
        assert s1 == 504
        assert "deadline" in json.loads(b1)["error"]
        assert timeouts == 1
        assert s2 == 200
        assert json.loads(b2)["result"]["status"] == "ok"


class TestServeCli:
    def test_serve_subcommand_binds_and_exits(self, capsys, tmp_path):
        from repro.cli import main

        snapshot = tmp_path / "health.json"
        rc = main([
            "serve", "--port", "0", "--duration", "1.0",
            "--json", str(snapshot),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "listening on http://127.0.0.1:" in out
        assert "POST /v1/predict" in out
        health = json.loads(snapshot.read_text())
        assert health["status"] == "ok"
