"""Tests for the CSR Graph container and builder."""

import numpy as np
import pytest

from repro.graph.builder import empty_graph, from_edges, from_networkx
from repro.graph.graph import Graph


class TestBuilderDirected:
    def test_counts(self, tiny_directed):
        assert tiny_directed.num_vertices == 6
        assert tiny_directed.num_edges == 5
        assert tiny_directed.num_half_edges == 5

    def test_out_neighbors(self, tiny_directed):
        assert sorted(tiny_directed.neighbors(0).tolist()) == [1, 2]
        assert tiny_directed.neighbors(4).tolist() == []

    def test_in_neighbors(self, tiny_directed):
        assert sorted(tiny_directed.in_neighbors(3).tolist()) == [1, 2]
        assert tiny_directed.in_neighbors(0).tolist() == []

    def test_degrees(self, tiny_directed):
        assert tiny_directed.out_degree(0) == 2
        assert tiny_directed.in_degree(3) == 2
        assert tiny_directed.degree(3) == 3  # in 2 + out 1

    def test_degree_arrays(self, tiny_directed):
        out = np.asarray(tiny_directed.out_degree())
        assert out.tolist() == [2, 1, 1, 1, 0, 0]
        inn = np.asarray(tiny_directed.in_degree())
        assert inn.tolist() == [0, 1, 1, 2, 1, 0]

    def test_dedupe_directed(self):
        edges = np.array([[0, 1], [0, 1], [1, 0]])
        g = from_edges(2, edges, directed=True)
        assert g.num_edges == 2  # 0->1 deduped, 1->0 kept

    def test_self_loops_dropped_by_default(self):
        g = from_edges(3, np.array([[0, 0], [0, 1]]), directed=True)
        assert g.num_edges == 1

    def test_self_loops_kept_when_allowed_directed(self):
        g = from_edges(
            3, np.array([[0, 0], [0, 1]]), directed=True, allow_self_loops=True
        )
        assert g.num_edges == 2

    def test_edges_roundtrip(self, tiny_directed):
        e = tiny_directed.edges()
        rebuilt = from_edges(6, e, directed=True)
        assert rebuilt == tiny_directed


class TestBuilderUndirected:
    def test_counts(self, tiny_undirected):
        assert tiny_undirected.num_edges == 5
        assert tiny_undirected.num_half_edges == 10

    def test_symmetry(self, tiny_undirected):
        g = tiny_undirected
        for v in range(g.num_vertices):
            for w in g.neighbors(v):
                assert v in g.neighbors(int(w))

    def test_orientation_irrelevant(self):
        a = from_edges(3, np.array([[0, 1]]), directed=False)
        b = from_edges(3, np.array([[1, 0]]), directed=False)
        assert a == b

    def test_dedupe_both_orientations(self):
        g = from_edges(3, np.array([[0, 1], [1, 0], [0, 1]]), directed=False)
        assert g.num_edges == 1

    def test_in_is_out(self, tiny_undirected):
        g = tiny_undirected
        assert g.in_indptr is g.out_indptr
        assert g.in_indices is g.out_indices

    def test_undirected_self_loop_rejected(self):
        with pytest.raises(ValueError):
            from_edges(
                2, np.array([[0, 0]]), directed=False, allow_self_loops=True
            )

    def test_edges_each_once_canonical(self, tiny_undirected):
        e = tiny_undirected.edges()
        assert len(e) == 5
        assert np.all(e[:, 0] <= e[:, 1])


class TestValidation:
    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([[0, 5]]), directed=True)

    def test_negative_endpoint(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([[-1, 0]]), directed=True)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([[0, 1, 2]]), directed=True)

    def test_directed_requires_in_csr(self):
        with pytest.raises(ValueError):
            Graph(
                2,
                np.array([0, 1, 1]),
                np.array([1]),
                directed=True,
            )

    def test_undirected_rejects_in_csr(self):
        with pytest.raises(ValueError):
            Graph(
                2,
                np.array([0, 1, 2]),
                np.array([1, 0]),
                directed=False,
                in_indptr=np.array([0, 1, 2]),
                in_indices=np.array([1, 0]),
            )

    def test_undirected_odd_half_edges_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 1, 1]), np.array([1]), directed=False)

    def test_indptr_length_checked(self):
        with pytest.raises(ValueError):
            Graph(3, np.array([0, 1]), np.array([1]), directed=False)

    def test_negative_num_vertices(self):
        with pytest.raises(ValueError):
            Graph(-1, np.array([0]), np.array([]), directed=False)


class TestConversions:
    def test_to_networkx_and_back(self, tiny_directed):
        nxg = tiny_directed.to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 5
        back = from_networkx(nxg)
        assert back == tiny_directed

    def test_from_networkx_requires_contiguous_labels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 5)
        with pytest.raises(ValueError):
            from_networkx(g)

    def test_to_scipy_shapes(self, tiny_directed):
        adj = tiny_directed.to_scipy("out")
        assert adj.shape == (6, 6)
        assert adj.nnz == 5
        adj_in = tiny_directed.to_scipy("in")
        assert adj_in.nnz == 5
        assert (adj.T != adj_in).nnz == 0

    def test_to_scipy_bad_direction(self, tiny_directed):
        with pytest.raises(ValueError):
            tiny_directed.to_scipy("sideways")

    def test_reverse_view(self, tiny_directed):
        rev = tiny_directed.reverse_view()
        assert sorted(rev.neighbors(3).tolist()) == [1, 2]
        assert rev.reverse_view().neighbors(0).tolist() == \
            tiny_directed.neighbors(0).tolist()

    def test_reverse_of_undirected_is_self(self, tiny_undirected):
        assert tiny_undirected.reverse_view() is tiny_undirected

    def test_as_undirected(self, tiny_directed):
        und = tiny_directed.as_undirected()
        assert not und.directed
        assert und.num_edges == 5  # no reciprocal pairs in the fixture

    def test_as_undirected_merges_reciprocal(self):
        g = from_edges(2, np.array([[0, 1], [1, 0]]), directed=True)
        assert g.as_undirected().num_edges == 1


class TestMisc:
    def test_empty_graph(self):
        g = empty_graph(5, directed=True)
        assert g.num_edges == 0
        assert g.neighbors(0).tolist() == []

    def test_zero_vertex_graph(self):
        g = empty_graph(0, directed=False)
        assert g.num_vertices == 0

    def test_nbytes_positive(self, tiny_undirected):
        assert tiny_undirected.nbytes > 0

    def test_text_size_reasonable(self, tiny_undirected):
        from repro.graph.io import graph_to_text

        est = tiny_undirected.text_size_bytes()
        actual = len(graph_to_text(tiny_undirected).split("\n", 1)[1])
        # estimate ignores the header; should be within 2x of reality
        assert 0.5 * actual <= est <= 2.0 * actual

    def test_repr_contains_counts(self, tiny_directed):
        assert "|V|=6" in repr(tiny_directed)

    def test_equality_vs_other_type(self, tiny_directed):
        assert tiny_directed != 42

    def test_neighbors_are_views(self, tiny_directed):
        nbrs = tiny_directed.neighbors(0)
        assert nbrs.base is tiny_directed.out_indices

    def test_neighbor_lists_sorted(self, random_graph):
        g = random_graph
        for v in range(0, g.num_vertices, 17):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)
