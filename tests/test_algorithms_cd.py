"""Tests for CD (Leung et al. weighted label propagation)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.cd import (
    CdProgram,
    _segment_argmax_label,
    community_detection_labels,
)
from repro.graph.builder import from_edges
from repro.graph.generators.community import planted_partition


class TestSegmentArgmax:
    def test_single_receiver(self):
        best, weight = _segment_argmax_label(
            np.array([0, 0, 0]), np.array([7, 7, 9]), np.array([1.0, 1.0, 1.5]), 2
        )
        assert best[0] == 7  # weight 2.0 beats 1.5
        assert weight[0] == pytest.approx(2.0)

    def test_tie_breaks_to_smaller_label(self):
        best, _ = _segment_argmax_label(
            np.array([0, 0]), np.array([5, 3]), np.array([1.0, 1.0]), 1
        )
        assert best[0] == 3

    def test_no_votes_gives_minus_one(self):
        best, weight = _segment_argmax_label(
            np.array([], dtype=int), np.array([], dtype=int), np.array([]), 3
        )
        assert best.tolist() == [-1, -1, -1]
        assert weight.tolist() == [0.0, 0.0, 0.0]

    def test_multiple_receivers_independent(self):
        best, _ = _segment_argmax_label(
            np.array([0, 1, 1]),
            np.array([4, 8, 8]),
            np.array([1.0, 0.5, 0.6]),
            2,
        )
        assert best.tolist() == [4, 8]


class TestCdProgram:
    def test_respects_max_iterations(self, random_graph):
        prog = CdProgram(random_graph, max_iterations=3)
        assert sum(1 for _ in prog) <= 3

    def test_paper_defaults(self):
        from repro.datasets import load_dataset

        algo = get_algorithm("cd")
        params = algo.default_params(load_dataset("kgs"))
        assert params["max_iterations"] == 5
        assert params["hop_attenuation"] == pytest.approx(0.1)
        assert params["initial_score"] == pytest.approx(1.0)

    def test_labels_valid_vertex_ids(self, random_graph):
        labels = community_detection_labels(random_graph)
        assert labels.min() >= 0
        assert labels.max() < random_graph.num_vertices

    def test_connected_pairs_tend_to_share_labels(self):
        """On a strongly modular graph CD recovers the communities."""
        g = planted_partition(300, 6, 25, 0.5, seed=11)
        labels = community_detection_labels(g)
        comm = np.arange(300) * 6 // 300
        # within each planted community, one label should dominate
        agreement = 0
        for c in range(6):
            members = labels[comm == c]
            _, counts = np.unique(members, return_counts=True)
            agreement += counts.max() / len(members)
        assert agreement / 6 > 0.6

    def test_communities_far_fewer_than_vertices(self):
        g = planted_partition(400, 8, 25, 0.5, seed=12)
        labels = community_detection_labels(g)
        assert len(np.unique(labels)) < 100

    def test_scores_stay_nonnegative(self, random_graph):
        prog = CdProgram(random_graph, max_iterations=5)
        for _ in prog:
            assert np.all(prog.scores >= 0)

    def test_all_vertices_active_each_round(self, random_graph):
        prog = CdProgram(random_graph, max_iterations=2)
        for report in prog:
            assert report.active is None

    def test_halts_when_no_change(self):
        """An edgeless graph converges after the first sweep."""
        from repro.graph.builder import empty_graph

        g = empty_graph(5, directed=False)
        prog = CdProgram(g, max_iterations=10)
        assert sum(1 for _ in prog) == 1

    def test_isolated_vertex_keeps_own_label(self, tiny_undirected):
        labels = community_detection_labels(tiny_undirected)
        assert labels[5] == 5

    def test_deterministic(self, random_graph):
        a = community_detection_labels(random_graph)
        b = community_detection_labels(random_graph)
        assert np.array_equal(a, b)

    def test_directed_direction_flag(self, random_digraph):
        report = CdProgram(random_digraph).step()
        assert report.direction == "both"
