"""End-to-end integration: text format -> registry -> platforms ->
metrics -> export, in one flow."""

import json

import numpy as np
import pytest

from repro.cluster.spec import das4_cluster
from repro.core.export import export_records_json, export_trace_csv
from repro.core.metrics import job_metrics
from repro.core.results import ExperimentResult
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec
from repro.datasets import load_dataset
from repro.graph.io import read_graph, write_graph
from repro.platforms import get_platform


class TestFullPipeline:
    def test_text_roundtrip_preserves_platform_results(
        self, tmp_path, small_cluster
    ):
        """A dataset written to the paper's text format and re-read
        produces identical platform results."""
        original = load_dataset("kgs", scale=0.05)
        path = tmp_path / "kgs.graph"
        write_graph(original, path)
        reloaded = read_graph(path, name="kgs")

        r1 = get_platform("giraph").run("conn", original, small_cluster)
        r2 = get_platform("giraph").run("conn", reloaded, small_cluster)
        assert np.array_equal(r1.output, r2.output)
        assert r1.execution_time == pytest.approx(r2.execution_time)

    def test_grid_to_json_to_analysis(self, tmp_path):
        """Run a grid, export JSON, and recover the paper's ordering
        from the exported document alone."""
        runner = Runner()
        exp = runner.run_grid(SweepSpec.make(
            "pipeline",
            platforms=["hadoop", "giraph"],
            algorithms=["bfs"],
            datasets=["kgs", "dotaleague"],
        ))
        path = tmp_path / "results.json"
        export_records_json(exp, path)
        doc = json.loads(path.read_text())
        times = {
            (r["platform"], r["dataset"]): r["execution_time"]
            for r in doc["records"]
        }
        for ds in ("kgs", "dotaleague"):
            assert times[("hadoop", ds)] > times[("giraph", ds)]

    def test_trace_export_covers_master_and_worker(self, tmp_path):
        runner = Runner()
        rec = runner.run(RunSpec("stratosphere", "bfs", "kgs", das4_cluster()))
        path = tmp_path / "trace.csv"
        export_trace_csv(rec.result.trace, path, num_points=20)
        body = path.read_text()
        assert "master,cpu" in body
        assert "worker0,memory" in body

    def test_metrics_survive_the_full_path(self):
        """job_metrics of a runner record matches a direct platform
        run (no state leaks through the runner layer)."""
        g = load_dataset("kgs")
        c = das4_cluster()
        direct = get_platform("graphlab").run("bfs", g, c)
        rec = Runner().run(RunSpec("graphlab", "bfs", "kgs", c))
        m1, m2 = job_metrics(direct), job_metrics(rec.result)
        assert m1.execution_time == pytest.approx(m2.execution_time)
        assert m1.eps == pytest.approx(m2.eps)

    def test_experiment_result_accumulates_mixed_outcomes(self):
        runner = Runner()
        exp = ExperimentResult("mixed")
        exp.add(runner.run(RunSpec("giraph", "bfs", "kgs")))
        exp.add(runner.run(RunSpec("giraph", "stats", "wikitalk")))  # crash
        exp.add(runner.run(RunSpec("neo4j", "stats", "dotaleague")))  # DNF
        assert len(exp.completed()) == 1
        statuses = {r.status.value for r in exp}
        assert statuses == {"ok", "crashed", "dnf"}
