"""Tests for the Pregel-style vertex-program API."""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs_levels
from repro.algorithms.vertex_api import (
    VertexAlgorithm,
    VertexContext,
    VertexProgram,
    run_vertex_program,
)
from repro.platforms import get_platform


class BfsVertexProgram(VertexProgram):
    """The paper's 45-line Giraph BFS, in the vertex-centric style."""

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_value(self, vertex, graph):
        return 0 if vertex == self.source else -1

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            if ctx.vertex == self.source:
                ctx.send_to_neighbors(1)
        elif ctx.value == -1 and messages:
            ctx.value = min(messages)
            ctx.send_to_neighbors(ctx.value + 1)
        ctx.vote_to_halt()


class MaxValueProgram(VertexProgram):
    """Classic Pregel example: propagate the maximum vertex id."""

    def initial_value(self, vertex, graph):
        return vertex

    def compute(self, ctx, messages):
        new = max([ctx.value] + messages)
        if new != ctx.value or ctx.superstep == 0:
            ctx.value = new
            ctx.send_to_neighbors(new)
        ctx.vote_to_halt()


class TestBfsVertexProgram:
    def test_matches_builtin_bfs(self, random_graph):
        values = run_vertex_program(random_graph, BfsVertexProgram(0))
        assert np.array_equal(np.array(values), bfs_levels(random_graph, 0))

    def test_directed(self, random_digraph):
        values = run_vertex_program(random_digraph, BfsVertexProgram(3))
        assert np.array_equal(np.array(values), bfs_levels(random_digraph, 3))

    def test_unreached_stay_minus_one(self, tiny_undirected):
        values = run_vertex_program(tiny_undirected, BfsVertexProgram(0))
        assert values[5] == -1


class TestMaxValueProgram:
    def test_component_maxima(self, tiny_undirected):
        values = run_vertex_program(tiny_undirected, MaxValueProgram())
        # component {0..4} -> 4; isolated 5 -> 5
        assert values == [4, 4, 4, 4, 4, 5]

    def test_directed_propagates_forward_only(self, tiny_directed):
        values = run_vertex_program(tiny_directed, MaxValueProgram())
        # 0 never receives anything (no in-edges)
        assert values[0] == 0
        # 4 hears from everything upstream
        assert values[4] == 4


class TestEngineSemantics:
    def test_messages_wake_halted_vertices(self, path_graph):
        """vote_to_halt deactivates, but incoming mail reactivates."""
        values = run_vertex_program(path_graph, BfsVertexProgram(0))
        assert values == list(range(10))

    def test_max_supersteps_cap(self, path_graph):
        class Chatter(VertexProgram):
            def initial_value(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.send_to_neighbors(1)  # never halts

        from repro.algorithms.vertex_api import _Engine

        engine = _Engine(path_graph, Chatter(), max_supersteps=5)
        assert sum(1 for _ in engine) == 5

    def test_reports_activity_and_messages(self, path_graph):
        from repro.algorithms.vertex_api import _Engine

        engine = _Engine(path_graph, BfsVertexProgram(0))
        first = engine.step()
        assert first.active.all()  # everyone runs superstep 0
        assert first.messages.sum() == 1  # only the source speaks

    def test_context_accessors(self, tiny_undirected):
        seen = {}

        class Probe(VertexProgram):
            def compute(self, ctx, messages):
                if ctx.vertex == 2:
                    seen["nbrs"] = sorted(ctx.neighbors())
                    seen["deg"] = ctx.out_degree()
                    seen["n"] = ctx.num_vertices
                ctx.vote_to_halt()

        run_vertex_program(tiny_undirected, Probe())
        assert seen == {"nbrs": [0, 1, 3], "deg": 3, "n": 6}

    def test_compute_must_be_overridden(self, path_graph):
        with pytest.raises(NotImplementedError):
            run_vertex_program(path_graph, VertexProgram())


class TestVertexAlgorithmAdapter:
    def test_runs_on_platform_models(self, random_graph, small_cluster):
        algo = VertexAlgorithm("custom-bfs", lambda: BfsVertexProgram(0))
        for plat in ("giraph", "hadoop", "graphlab"):
            r = get_platform(plat).run(algo, random_graph, small_cluster)
            assert np.array_equal(
                np.array(r.output), bfs_levels(random_graph, 0)
            )
            assert r.execution_time > 0

    def test_platform_ordering_holds_for_custom_programs(
        self, random_graph, small_cluster
    ):
        algo = VertexAlgorithm("custom-bfs", lambda: BfsVertexProgram(0))
        t_hadoop = get_platform("hadoop").run(
            algo, random_graph, small_cluster
        ).execution_time
        t_giraph = get_platform("giraph").run(
            algo, random_graph, small_cluster
        ).execution_time
        assert t_hadoop > t_giraph
