"""Tests for BFS (reference and superstep program)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.bfs import BfsProgram, bfs_levels
from repro.graph.builder import from_edges


class TestReferenceBfs:
    def test_path_levels(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert levels.tolist() == list(range(10))

    def test_from_middle(self, path_graph):
        levels = bfs_levels(path_graph, 5)
        assert levels[0] == 5 and levels[9] == 4

    def test_unreachable_is_minus_one(self, tiny_undirected):
        levels = bfs_levels(tiny_undirected, 0)
        assert levels[5] == -1

    def test_directed_follows_out_edges_only(self, tiny_directed):
        levels = bfs_levels(tiny_directed, 3)
        # 3 -> 4 reachable; 0,1,2 are upstream, unreachable
        assert levels[4] == 1
        assert levels[0] == levels[1] == levels[2] == -1

    def test_matches_networkx(self, random_graph):
        levels = bfs_levels(random_graph, 0)
        truth = nx.single_source_shortest_path_length(
            random_graph.to_networkx(), 0
        )
        for v in range(random_graph.num_vertices):
            assert levels[v] == truth.get(v, -1)

    def test_matches_networkx_directed(self, random_digraph):
        levels = bfs_levels(random_digraph, 3)
        truth = nx.single_source_shortest_path_length(
            random_digraph.to_networkx(), 3
        )
        for v in range(random_digraph.num_vertices):
            assert levels[v] == truth.get(v, -1)

    def test_bad_source(self, path_graph):
        with pytest.raises(ValueError):
            bfs_levels(path_graph, 100)


class TestBfsProgram:
    def test_program_matches_reference(self, random_graph):
        prog = BfsProgram(random_graph, 0)
        for _ in prog:
            pass
        assert np.array_equal(prog.result(), bfs_levels(random_graph, 0))

    def test_iteration_count_is_depth_plus_one(self, path_graph):
        """Pregel BFS runs one final superstep that discovers nothing."""
        prog = BfsProgram(path_graph, 0)
        n = sum(1 for _ in prog)
        assert n == 10  # depth 9 + final empty superstep

    def test_coverage(self, tiny_undirected):
        prog = BfsProgram(tiny_undirected, 0)
        for _ in prog:
            pass
        assert prog.coverage() == pytest.approx(5 / 6)

    def test_active_is_frontier(self, path_graph):
        prog = BfsProgram(path_graph, 0)
        report = prog.step()
        n = path_graph.num_vertices
        assert report.num_active(n) == 1
        assert report.active_vertex_ids(n).tolist() == [0]

    def test_messages_equal_frontier_degree(self, path_graph):
        prog = BfsProgram(path_graph, 0)
        report = prog.step()
        assert report.messages.sum() == 1  # vertex 0 has degree 1

    def test_halts_on_isolated_source(self, tiny_undirected):
        prog = BfsProgram(tiny_undirected, 5)
        reports = list(prog)
        assert len(reports) == 1
        assert reports[0].halted

    def test_run_reference_statistics(self, random_graph):
        algo = get_algorithm("bfs")
        res = algo.run_reference(random_graph, source=0)
        assert res.algorithm == "bfs"
        assert res.iterations >= 1
        assert 0.0 < res.coverage <= 1.0
        assert res.total_messages > 0

    def test_source_default_from_registry(self):
        from repro.datasets import load_dataset

        g = load_dataset("kgs")
        algo = get_algorithm("bfs")
        params = algo.default_params(g)
        assert 0 <= int(params["source"]) < g.num_vertices
