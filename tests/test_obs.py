"""Harness observability (``repro.obs``): metrics, events, and the
zero-perturbation contract.

Three contracts under test:

* **histogram math** — log-bucket quantiles stay within one half-bucket
  (a factor ``sqrt(LOG_BASE)``) of the exact order statistic, and
  merging is associative/commutative/serialization-stable, so the
  worker->parent fold loses nothing (property-tested with hypothesis);
* **zero perturbation** — enabling observability leaves every sweep
  record bit-identical, across all platforms x {bfs, conn, sssp} and
  serial vs. 4-worker execution;
* **cross-process merge** — worker sessions snapshot back to the
  parent with counters summed, gauges folded as maxima, events keeping
  their own worker ids, and rate gauges recomputed parent-side.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec
from repro.des.faults import named_plan
from repro.obs.metrics import (
    LOG_BASE,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.render import (
    load_events_jsonl,
    render_session,
    render_stats_from_file,
)
from repro.platforms.registry import PLATFORM_NAMES
from tests.test_spec_sweep import records_equal


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """No test may leave an ambient session behind (it would silently
    instrument every later test in the process)."""
    yield
    assert obs.active() is None, "test leaked an ambient obs session"
    obs.detach()


# -- histogram properties (hypothesis) --------------------------------------

positive_values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
observations = st.lists(
    positive_values | st.just(0.0), min_size=0, max_size=200
)


def _hist_of(values) -> Histogram:
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


def _same_distribution(a: Histogram, b: Histogram) -> None:
    assert a.buckets == b.buckets
    assert a.zeros == b.zeros
    assert a.count == b.count
    assert a.min == b.min and a.max == b.max
    # totals are float sums folded in different orders
    assert math.isclose(a.total, b.total, rel_tol=1e-9, abs_tol=1e-12)


@given(observations, st.integers(0, 200), st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_histogram_merge_associative_and_commutative(values, cut_a, cut_b):
    i, j = sorted((cut_a % (len(values) + 1), cut_b % (len(values) + 1)))
    parts = [values[:i], values[i:j], values[j:]]

    whole = _hist_of(values)

    left = _hist_of(parts[0])        # (a + b) + c
    left.merge(_hist_of(parts[1]))
    left.merge(_hist_of(parts[2]))

    right = _hist_of(parts[2])       # c + (b + a): reversed order
    mid = _hist_of(parts[1])
    mid.merge(_hist_of(parts[0]))
    right.merge(mid)

    _same_distribution(left, whole)
    _same_distribution(right, whole)


@given(
    st.lists(positive_values, min_size=1, max_size=300),
    st.sampled_from([0.5, 0.9, 0.99, 1.0]),
)
@settings(max_examples=100, deadline=None)
def test_histogram_quantile_within_half_bucket(values, q):
    """The estimate is the geometric midpoint of the bucket holding the
    ceil(q*n)-th order statistic, so it sits within a factor
    sqrt(LOG_BASE) of numpy's inverted-CDF percentile (the same order
    statistic)."""
    h = _hist_of(values)
    est = h.quantile(q)
    exact = float(np.percentile(values, q * 100, method="inverted_cdf"))
    # one extra bucket of slack: floor(log(v)/log(base)) can land the
    # boundary value one bucket low through float rounding
    tol = math.sqrt(LOG_BASE) * LOG_BASE
    assert exact / tol <= est <= exact * tol


@given(observations)
@settings(max_examples=60, deadline=None)
def test_histogram_json_round_trip(values):
    h = _hist_of(values)
    clone = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
    assert clone.to_dict() == h.to_dict()
    if h.count:
        for q in (0.5, 0.99):
            assert clone.quantile(q) == h.quantile(q)
        assert clone.mean == h.mean


def test_histogram_zeros_and_empty_edge_cases():
    h = Histogram()
    assert math.isnan(h.quantile(0.5))
    assert math.isnan(h.mean)
    h.observe(0.0)
    h.observe(0.0)
    h.observe(4.0)
    assert h.quantile(0.5) == 0.0       # rank 2 of 3 is an underflow
    assert h.quantile(1.0) > 0.0
    with pytest.raises(ValueError):
        h.quantile(0.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


# -- registry merge semantics ------------------------------------------------

@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.floats(0, 1e6), max_size=3
    ),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.floats(0, 1e6), max_size=3
    ),
)
@settings(max_examples=40, deadline=None)
def test_registry_merge_counters_sum_gauges_max(left, right):
    a, b = MetricsRegistry(), MetricsRegistry()
    for name, v in left.items():
        a.count(name, v)
        a.gauge(name, v)
    for name, v in right.items():
        b.count(name, v)
        b.gauge(name, v)
    a.merge(b.to_dict())  # the cross-process (serialized) path
    for name in set(left) | set(right):
        want = left.get(name, 0.0) + right.get(name, 0.0)
        assert math.isclose(a.counters[name], want, rel_tol=1e-12)
        assert a.gauges[name] == max(
            left.get(name, -math.inf), right.get(name, -math.inf)
        )


def test_registry_histogram_merge_and_round_trip():
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in (0.1, 0.2, 0.4):
        a.observe("wall", v)
    for v in (0.8, 1.6):
        b.observe("wall", v)
    a.merge(b)
    assert a.histogram("wall").count == 5
    clone = MetricsRegistry.from_dict(json.loads(json.dumps(a.to_dict())))
    assert clone.to_dict() == a.to_dict()
    assert not a.is_empty() and MetricsRegistry().is_empty()


def test_registry_concurrent_emission_loses_nothing():
    """The serve path writes one registry from the event loop and the
    batch executor threads at once; increments must not be lost to
    unlocked read-modify-write."""
    import threading

    reg = MetricsRegistry()
    workers, per_worker = 8, 2000

    def emit():
        for _ in range(per_worker):
            reg.count("hits")
            reg.observe("wall", 0.001)
            reg.gauge_max("peak", 1.0)

    threads = [threading.Thread(target=emit) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counters["hits"] == workers * per_worker
    assert reg.histogram("wall").count == workers * per_worker
    assert reg.gauges["peak"] == 1.0


def test_prometheus_exposition():
    reg = MetricsRegistry()
    reg.count("runner.cells_total", 3)
    reg.gauge("sweep.worker_utilization", 0.75)
    reg.observe("runner.cell_wall_seconds", 0.5)
    text = reg.to_prometheus()
    assert "# TYPE graphbench_runner_cells_total counter" in text
    assert "graphbench_runner_cells_total 3" in text
    assert "# TYPE graphbench_sweep_worker_utilization gauge" in text
    assert 'graphbench_runner_cell_wall_seconds{quantile="0.99"}' in text
    assert "graphbench_runner_cell_wall_seconds_count 1" in text
    assert prometheus_name("a.b-c/d") == "graphbench_a_b_c_d"
    assert MetricsRegistry().to_prometheus() == ""


# -- Prometheus text-format grammar -------------------------------------------

import re as _re

#: metric names: [a-zA-Z_:][a-zA-Z0-9_:]* (exposition-format spec)
_PROM_METRIC_NAME = _re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: label names: [a-zA-Z_][a-zA-Z0-9_]* (no colons)
_PROM_LABEL_NAME = _re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_PROM_SAMPLE = _re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
#: summary/histogram child-sample suffixes attached to a family name
_PROM_SUFFIXES = ("_sum", "_count", "_bucket")
_PROM_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_prometheus_exposition(text: str) -> dict[str, dict]:
    """Parse (and structurally validate) a Prometheus text exposition.

    Enforces the exposition-format grammar, not substrings: metric-name
    and label-name regexes, ``# HELP`` before ``# TYPE`` before the
    samples of each family, valid TYPE values, float-parseable sample
    values, and samples only under a declared family.  Returns
    ``{family: {"type", "help", "samples": [(labels_dict, value)]}}``.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for lineno, line in enumerate(text.splitlines(), 1):
        assert line == line.rstrip(), f"line {lineno}: trailing whitespace"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert _PROM_METRIC_NAME.match(name), f"bad HELP name {name!r}"
            assert name not in families, f"duplicate HELP for {name}"
            assert help_text.strip(), f"empty HELP text for {name}"
            families[name] = {"type": None, "help": help_text, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_text = rest.partition(" ")
            assert _PROM_METRIC_NAME.match(name), f"bad TYPE name {name!r}"
            assert name in families, f"TYPE before HELP for {name}"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            assert not families[name]["samples"], f"TYPE after samples {name}"
            assert type_text in _PROM_TYPES, f"bad TYPE value {type_text!r}"
            families[name]["type"] = type_text
            current = name
            continue
        assert not line.startswith("#"), f"line {lineno}: stray comment"
        m = _PROM_SAMPLE.match(line)
        assert m, f"line {lineno}: unparseable sample {line!r}"
        sample_name = m.group("name")
        family = sample_name
        for suffix in _PROM_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families:
                    family = base
                break
        assert family in families, f"sample {sample_name} has no family"
        assert family == current, (
            f"line {lineno}: sample for {family} interleaved into "
            f"{current}'s block"
        )
        assert families[family]["type"] is not None, (
            f"sample before TYPE for {family}"
        )
        labels: dict[str, str] = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lname, _, lvalue = pair.partition("=")
                assert _PROM_LABEL_NAME.match(lname), (
                    f"bad label name {lname!r}"
                )
                assert lvalue.startswith('"') and lvalue.endswith('"'), (
                    f"unquoted label value {lvalue!r}"
                )
                labels[lname] = lvalue[1:-1]
        value = float(m.group("value"))  # "nan"/"+Inf" parse fine
        families[family]["samples"].append((sample_name, labels, value))
    return families


def _validate_prometheus(text: str) -> dict[str, dict]:
    """Grammar-parse plus per-family semantic checks (quantile
    monotonicity, summary completeness, finite counters/gauges)."""
    families = parse_prometheus_exposition(text)
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has HELP but no TYPE"
        assert family["samples"], f"{name} declared but has no samples"
        if family["type"] in ("counter", "gauge"):
            assert len(family["samples"]) == 1
            _, labels, value = family["samples"][0]
            assert labels == {}
            assert math.isfinite(value)
            if family["type"] == "counter":
                assert value >= 0.0
        elif family["type"] == "summary":
            quantiles = [
                (float(labels["quantile"]), value)
                for sname, labels, value in family["samples"]
                if "quantile" in labels
            ]
            assert quantiles, f"summary {name} has no quantile samples"
            qs = [q for q, _ in quantiles]
            assert qs == sorted(qs), f"{name} quantiles out of order"
            finite = [(q, v) for q, v in quantiles if not math.isnan(v)]
            values = [v for _, v in finite]
            assert values == sorted(values), (
                f"{name} quantile values not monotone: {finite}"
            )
            names = {sname for sname, _, _ in family["samples"]}
            assert f"{name}_sum" in names, f"{name} missing _sum"
            assert f"{name}_count" in names, f"{name} missing _count"
            count = next(
                v for sname, _, v in family["samples"]
                if sname == f"{name}_count"
            )
            assert count >= 0 and count == int(count)
    return families


class TestPrometheusGrammar:
    def test_populated_registry_passes_grammar(self):
        reg = MetricsRegistry()
        reg.count("runner.cells_total", 7)
        reg.count("kernels.numpy.gather/neighbors-calls", 3)  # dirty name
        reg.gauge("sweep.worker_utilization", 0.94)
        reg.gauge_max("runner.peak_rss_bytes", 4.8e7)
        for v in (0.01, 0.2, 0.7, 3.0, 12.0):
            reg.observe("runner.cell_wall_seconds", v)
        families = _validate_prometheus(reg.to_prometheus())
        assert families["graphbench_runner_cells_total"]["type"] == "counter"
        assert (
            families["graphbench_sweep_worker_utilization"]["type"] == "gauge"
        )
        wall = families["graphbench_runner_cell_wall_seconds"]
        assert wall["type"] == "summary"
        quantiles = {
            labels["quantile"]: v
            for _, labels, v in wall["samples"]
            if "quantile" in labels
        }
        assert set(quantiles) == {"0.5", "0.9", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.9"] <= quantiles["0.99"]

    def test_help_precedes_type_precedes_samples(self):
        reg = MetricsRegistry()
        reg.count("a", 1)
        reg.observe("b", 2.0)
        lines = reg.to_prometheus().splitlines()
        for family in ("graphbench_a", "graphbench_b"):
            help_i = lines.index(
                next(l for l in lines
                     if l.startswith(f"# HELP {family} "))
            )
            type_i = lines.index(
                next(l for l in lines
                     if l.startswith(f"# TYPE {family} "))
            )
            sample_i = min(
                i for i, l in enumerate(lines)
                if l.startswith(family) and not l.startswith("#")
            )
            assert help_i < type_i < sample_i

    def test_empty_summary_quantiles_are_nan_not_invalid(self):
        reg = MetricsRegistry()
        reg.histogram("never.observed")  # declared, zero observations
        families = _validate_prometheus(reg.to_prometheus())
        fam = families["graphbench_never_observed"]
        for sname, labels, value in fam["samples"]:
            if "quantile" in labels:
                assert math.isnan(value)
            elif sname.endswith("_count"):
                assert value == 0

    def test_validator_catches_bad_documents(self):
        with pytest.raises(AssertionError, match="TYPE before HELP"):
            _validate_prometheus("# TYPE orphan counter\norphan 1")
        with pytest.raises(AssertionError, match="no family"):
            _validate_prometheus(
                "# HELP a h\n# TYPE a counter\na 1\nstray 2"
            )
        with pytest.raises(AssertionError, match="bad TYPE value"):
            _validate_prometheus("# HELP a h\n# TYPE a enum\na 1")
        with pytest.raises(ValueError):
            _validate_prometheus(
                "# HELP a h\n# TYPE a counter\na one"
            )

    def test_stats_cli_prometheus_output_is_grammatical(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        with obs.observed(events_path=path):
            Runner(repetitions=2).run_grid(
                SweepSpec.make(
                    "test:prom-grammar",
                    platforms=("giraph", "graphlab"),
                    algorithms=("bfs",),
                    datasets=("amazon",),
                ),
                workers=2,
            )
        assert main(["stats", "--events", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        families = _validate_prometheus(out)
        assert "graphbench_runner_cells_total" in families
        assert (
            families["graphbench_runner_cell_wall_seconds"]["type"]
            == "summary"
        )


# -- event stream -------------------------------------------------------------

def test_event_stream_rejects_unknown_kind_and_tiny_ring():
    stream = obs.EventStream()
    with pytest.raises(ValueError, match="unknown event kind"):
        stream.emit("made_up_kind")
    with pytest.raises(ValueError):
        obs.EventStream(ring_size=0)


def test_event_ring_bounded_but_counts_everything():
    stream = obs.EventStream(ring_size=4)
    for _ in range(10):
        stream.emit("cache_hit", layer="memory")
    assert len(stream) == 4
    assert stream.emitted == 10
    assert stream.by_kind() == {"cache_hit": 4}
    ts = [e.ts for e in stream.events()]
    assert ts == sorted(ts)  # monotonic stamps, oldest first


def test_event_jsonl_sink_schema_stamped(tmp_path):
    path = tmp_path / "events.jsonl"
    session = obs.Observability(events_path=path)
    session.emit("run_started", cell="giraph/bfs/amazon")
    session.metrics.count("runner.cells_total")
    session.metrics.observe("runner.cell_wall_seconds", 0.25)
    session.close()
    session.close()  # idempotent

    records = [json.loads(x) for x in path.read_text().splitlines()]
    assert all(r["schema"] == obs.EVENT_SCHEMA for r in records)
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "run_started"
    assert records[0]["worker_id"] == session.worker_id
    # the metrics tail lets a post-hoc reader rebuild the registry
    assert kinds.count("metric") == 2
    metrics, counts, lines = load_events_jsonl(path)
    assert lines == len(records)
    assert counts == {"run_started": 1}
    assert metrics.counters["runner.cells_total"] == 1.0
    assert metrics.histogram("runner.cell_wall_seconds").count == 1


def test_load_events_jsonl_tolerates_unknown_kinds(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        json.dumps({"schema": 99, "kind": "from_the_future", "ts": 1}) + "\n"
        + "\n"  # blank lines are skipped
        + json.dumps({"schema": 1, "kind": "cache_hit", "ts": 2}) + "\n"
    )
    _metrics, counts, lines = load_events_jsonl(path)
    assert lines == 2
    assert counts == {"from_the_future": 1, "cache_hit": 1}


# -- ambient session lifecycle ------------------------------------------------

def test_start_stop_observed_scoped_detach(tmp_path):
    assert obs.active() is None and not obs.is_active()
    with obs.observed() as outer:
        assert obs.active() is outer
        inner = obs.Observability(role="worker")
        with obs.scoped(inner):
            assert obs.active() is inner
        assert obs.active() is outer
    assert obs.active() is None

    path = tmp_path / "events.jsonl"
    session = obs.start(events_path=path)
    session.emit("cache_miss")
    obs.detach()  # drops without closing: the sink must stay open
    assert obs.active() is None
    session.emit("cache_hit", layer="memory")
    session.close()
    kinds = [json.loads(x)["kind"] for x in path.read_text().splitlines()]
    assert kinds[:2] == ["cache_miss", "cache_hit"]

    replacement = obs.start()
    assert obs.start() is not replacement  # restart closes the old one
    assert obs.stop() is not None
    assert obs.stop() is None


def test_snapshot_absorb_preserves_provenance():
    parent = obs.Observability(role="main")
    worker = obs.Observability(role="worker")
    worker.metrics.count("runner.cells_total", 2)
    worker.metrics.gauge_max("runner.peak_rss_bytes", 123.0)
    worker.emit("worker_heartbeat", batch_size=2)
    parent.absorb(worker.snapshot())
    assert parent.metrics.counters["runner.cells_total"] == 2.0
    assert parent.metrics.gauges["runner.peak_rss_bytes"] == 123.0
    (event,) = parent.events.events()
    assert event.kind == "worker_heartbeat"
    assert event.fields["worker_id"] == worker.worker_id


# -- zero perturbation: observed results bit-identical ------------------------

#: all platforms x the three ISSUE-named algorithms on one dataset
IDENTITY_GRID = SweepSpec.make(
    "test:obs-identity",
    platforms=PLATFORM_NAMES,
    algorithms=("bfs", "conn", "sssp"),
    datasets=("amazon",),
)


class TestZeroPerturbation:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_bit_identical_with_observability(self, workers):
        plain = Runner(jitter=0.02, repetitions=2).run_grid(
            IDENTITY_GRID, workers=workers
        )
        with obs.observed() as session:
            watched = Runner(jitter=0.02, repetitions=2).run_grid(
                IDENTITY_GRID, workers=workers
            )
        assert len(plain) == len(watched) == len(IDENTITY_GRID)
        for a, b in zip(plain, watched):
            assert records_equal(a, b), (
                f"observability perturbed "
                f"{a.platform}/{a.algorithm}/{a.dataset} "
                f"(workers={workers})"
            )
        # and the session actually observed the sweep
        assert session.metrics.counters["runner.cells_total"] == len(plain)

    def test_off_by_default(self):
        record = Runner().run(RunSpec("giraph", "bfs", "amazon"))
        assert record.ok
        assert obs.active() is None


# -- instrumentation sites ----------------------------------------------------

class TestInstrumentation:
    def test_serial_runner_metrics_and_events(self):
        with obs.observed() as session:
            exp = Runner(repetitions=2).run_grid(
                SweepSpec.make(
                    "test:obs-serial",
                    platforms=("giraph", "graphlab"),
                    algorithms=("bfs",),
                    datasets=("amazon",),
                )
            )
        assert all(r.ok for r in exp)
        m = session.metrics
        assert m.counters["runner.cells_total"] == 2.0
        assert m.counters["runner.cells_ok"] == 2.0
        assert m.histogram("runner.cell_wall_seconds").count == 2
        assert m.gauges["runner.peak_rss_bytes"] > 0
        kinds = session.events.by_kind()
        assert kinds["run_started"] == kinds["run_finished"] == 2
        assert kinds["sweep_started"] == kinds["sweep_finished"] == 1

    def test_parallel_sweep_merges_worker_sessions(self):
        sweep = SweepSpec.make(
            "test:obs-parallel",
            platforms=("giraph", "graphlab"),
            algorithms=("bfs",),
            datasets=("amazon", "wikitalk"),
        )
        with obs.observed() as session:
            exp = Runner(repetitions=2).run_grid(sweep, workers=2)
        assert all(r.ok for r in exp)
        m = session.metrics
        # every worker-side cell merged back exactly
        assert m.counters["runner.cells_total"] == 4.0
        assert m.histogram("runner.cell_wall_seconds").count == 4
        assert m.counters["sweep.batches_total"] >= 1
        util = m.gauges["sweep.worker_utilization"]
        assert 0.0 < util <= 1.0
        kinds = session.events.by_kind()
        assert kinds["worker_heartbeat"] >= 1
        assert kinds["cell_dispatched"] >= 1
        assert kinds["run_finished"] == 4
        # events retain the recording process's id: with forked
        # workers, run events come from child pids, sweep events from
        # the parent
        sweep_ids = {
            e.fields["worker_id"]
            for e in session.events.events()
            if e.kind in ("sweep_started", "sweep_finished")
        }
        assert sweep_ids == {session.worker_id}

    def test_trace_cache_metrics_and_events(self):
        with obs.observed() as session:
            runner = Runner(repetitions=2)
            spec = RunSpec("giraph", "bfs", "amazon")
            runner.run(spec)
            runner.run(spec)  # second run replays the recorded trace
        m = session.metrics
        assert m.counters.get("trace_cache.misses", 0) >= 1
        assert m.counters.get("trace_cache.hits", 0) >= 1
        assert 0.0 < m.gauges["trace_cache.hit_rate"] <= 1.0
        assert m.histogram("trace_cache.record_wall_seconds").count >= 1
        kinds = session.events.by_kind()
        assert kinds.get("cache_miss", 0) >= 1
        assert kinds.get("cache_hit", 0) >= 1

    def test_kernel_dispatch_counters(self):
        from repro.kernels import dispatch

        indptr = np.array([0, 2, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 2], dtype=np.int32)
        frontier = np.array([0], dtype=np.int64)
        plain = dispatch.gather_neighbors(indptr, indices, frontier)
        with obs.observed() as session:
            watched = dispatch.gather_neighbors(indptr, indices, frontier)
        assert np.array_equal(plain, watched)
        backend = dispatch.active_backend()
        m = session.metrics
        assert m.counters[f"kernels.{backend}.gather_neighbors.calls"] == 1.0
        wall = m.counters[f"kernels.{backend}.gather_neighbors.wall_seconds"]
        assert wall >= 0.0

    def test_crash_and_retry_events(self):
        crash = RunSpec(
            "giraph", "bfs", "amazon",
            fault_plan=named_plan("crash", at=2.0, node=1),
        )
        recover = RunSpec(
            "hadoop", "bfs", "amazon",
            fault_plan=named_plan("crash", at=2.0, node=1),
        )
        with obs.observed() as session:
            crashed = Runner().run(crash)     # giraph aborts on node loss
            recovered = Runner().run(recover)  # hadoop retries the tasks
        assert not crashed.ok
        assert recovered.ok
        m = session.metrics
        assert m.counters["runner.cells_crashed"] == 1.0
        assert m.counters.get("runner.fault_retries", 0) >= 1
        kinds = session.events.by_kind()
        assert kinds.get("crash", 0) >= 1
        assert kinds.get("retry", 0) >= 1

    def test_benchmark_gate_verdict_events(self):
        from repro.core.benchmark import run_benchmark

        with obs.observed() as session:
            report = run_benchmark(
                workloads=("bfs",), platforms=("giraph", "graphlab"),
                datasets=("kgs",), scale="tiny",
            )
        assert report.all_validated
        m = session.metrics
        assert m.counters["benchmark.cells_validated"] == 2.0
        verdicts = [
            e for e in session.events.events() if e.kind == "gate_verdict"
        ]
        assert len(verdicts) == 2
        for e in verdicts:
            assert e.fields["verdict"] == "PASS"
            assert e.fields["over_budget"] is False


# -- rendering and the stats CLI ----------------------------------------------

class TestRendering:
    def test_render_session_tables(self):
        with obs.observed() as session:
            Runner(repetitions=2).run(RunSpec("giraph", "bfs", "amazon"))
        text = render_session(session)
        assert "distributions" in text
        assert "runner.cell_wall_seconds" in text
        assert "p99" in text
        assert "run_started" in text

    def test_render_empty_session(self):
        assert "no metrics or events" in render_session(obs.Observability())

    def test_render_stats_from_file_round_trips_quantiles(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.observed(events_path=path) as session:
            Runner(repetitions=2).run_grid(
                SweepSpec.make(
                    "test:obs-render",
                    platforms=("giraph",),
                    algorithms=("bfs", "conn"),
                    datasets=("amazon",),
                )
            )
            live = dict(session.metrics.counters)
        text = render_stats_from_file(path)
        assert "events file:" in text
        assert "runner.cell_wall_seconds" in text
        metrics, _counts, _lines = load_events_jsonl(path)
        assert metrics.counters == live
        assert (
            metrics.histogram("runner.cell_wall_seconds").quantile(0.99)
            == session.metrics.histogram(
                "runner.cell_wall_seconds"
            ).quantile(0.99)
        )

    def test_stats_cli_post_hoc_and_prometheus(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        rc = main([
            "sweep", "--mode", "grid", "--platforms", "giraph",
            "--algorithms", "bfs", "--datasets", "amazon",
            "--workers", "2", "--events", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "harness events" in out
        assert path.exists()

        assert main(["stats", "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "events file:" in out
        assert "runner.cell_wall_seconds" in out

        assert main(["stats", "--events", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE graphbench_runner_cells_total counter" in out

    def test_stats_cli_requires_a_source(self, capsys):
        from repro.cli import main

        assert main(["stats"]) == 2
        assert "--events" in capsys.readouterr().err

    def test_stats_cli_demo(self, capsys):
        from repro.cli import main

        assert main(["stats", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "runner.cell_wall_seconds" in out
        assert "sweep_finished" in out
