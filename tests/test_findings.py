"""Tests for the key-findings verifier and the new CLI subcommands."""

import pytest

from repro.core.findings import Finding, render_findings, verify_findings


@pytest.fixture(scope="module")
def findings():
    return verify_findings()


@pytest.mark.slow
class TestFindings:
    def test_all_hold(self, findings):
        failing = [f.claim for f in findings if not f.holds]
        assert not failing, failing

    def test_covers_all_evaluation_sections(self, findings):
        assert {f.section for f in findings} == {"4.1", "4.2", "4.3", "4.4"}

    def test_count(self, findings):
        assert len(findings) >= 9

    def test_evidence_nonempty(self, findings):
        for f in findings:
            assert f.evidence

    def test_render(self, findings):
        text = render_findings(findings)
        assert "PASS" in text
        assert "paper claim" in text

    def test_render_failures_marked(self):
        text = render_findings(
            [Finding("4.1", "the moon is cheese", False, "telescope")]
        )
        assert "FAIL" in text


class TestCliSubcommands:
    def test_graph500(self, capsys):
        from repro.cli import main

        assert main(["graph500", "--graph-scale", "8", "--roots", "4"]) == 0
        out = capsys.readouterr().out
        assert "harmonic mean TEPS" in out
        assert "passed" in out

    def test_ingest(self, capsys):
        from repro.cli import main

        assert main(["ingest"]) == 0
        assert "Neo4j" in capsys.readouterr().out
