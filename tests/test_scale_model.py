"""Tests for paper-scale workload accounting."""

import pytest

from repro.datasets import PAPER_SPECS_TABLE2, load_dataset
from repro.platforms.scale import ScaleModel


class TestIdentity:
    def test_unknown_graph_is_identity(self, random_graph):
        s = ScaleModel.for_graph(random_graph)
        assert s.is_identity()
        assert s.edges(100) == 100
        assert s.vertices(100) == 100
        assert s.degree_quadratic(100) == 100

    def test_empty_graph_is_identity(self):
        from repro.graph.builder import empty_graph

        s = ScaleModel.for_graph(empty_graph(0, directed=False))
        assert s.is_identity()


class TestRegistryGraphs:
    @pytest.mark.parametrize("name", ["kgs", "dotaleague", "friendster"])
    def test_edges_scale_to_paper(self, name):
        g = load_dataset(name)
        s = ScaleModel.for_graph(g)
        assert s.edges(g.num_edges) == pytest.approx(
            PAPER_SPECS_TABLE2[name].num_edges
        )

    @pytest.mark.parametrize("name", ["amazon", "citation", "synth"])
    def test_vertices_scale_to_paper(self, name):
        g = load_dataset(name)
        s = ScaleModel.for_graph(g)
        assert s.vertices(g.num_vertices) == pytest.approx(
            PAPER_SPECS_TABLE2[name].num_vertices
        )

    def test_d_mult_near_one_when_degree_matches(self):
        # kgs is calibrated to D~112 vs paper 113
        s = ScaleModel.for_graph(load_dataset("kgs"))
        assert 0.9 <= s.d_mult <= 1.3

    def test_dotaleague_d_mult_above_one(self):
        # paper D=1663 vs our ~1000
        s = ScaleModel.for_graph(load_dataset("dotaleague"))
        assert s.d_mult > 1.2

    def test_suffix_stripped_names_match(self):
        g = load_dataset("kgs")
        g2 = type(g)(
            g.num_vertices, g.out_indptr, g.out_indices,
            directed=False, name="kgs(lcc)",
        )
        s = ScaleModel.for_graph(g2)
        assert not s.is_identity()


class TestQuadraticScaling:
    def test_normal_graph_quadratic_is_e_times_d(self):
        s = ScaleModel(v_mult=10, e_mult=20, d_mult=2, hub_scaled=False)
        assert s.degree_quadratic(1.0) == pytest.approx(40.0)
        assert s.per_vertex_degree2(1.0) == pytest.approx(4.0)

    def test_hub_scaled_quadratic_is_v_squared(self):
        s = ScaleModel(v_mult=10, e_mult=20, d_mult=2, hub_scaled=True)
        assert s.degree_quadratic(1.0) == pytest.approx(100.0)
        assert s.per_vertex_degree2(1.0) == pytest.approx(100.0)

    def test_wikitalk_is_hub_scaled(self):
        s = ScaleModel.for_graph(load_dataset("wikitalk"))
        assert s.hub_scaled
        assert s.quadratic_mult == pytest.approx(s.v_mult**2)

    def test_others_not_hub_scaled(self):
        for name in ("kgs", "dotaleague", "citation"):
            assert not ScaleModel.for_graph(load_dataset(name)).hub_scaled


class TestTextBytes:
    def test_text_bytes_scale(self):
        g = load_dataset("friendster")
        s = ScaleModel.for_graph(g)
        scaled = s.bytes_text(g)
        # paper: Friendster on disk is "tens of GB"
        assert 10 * 2**30 <= scaled <= 80 * 2**30
