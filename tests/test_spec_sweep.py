"""RunSpec/SweepSpec API, per-cell seeding, and the parallel sweep
executor.

The contract under test (paper Section 3.2: every grid cell is an
independent experiment):

* specs are frozen values — hashable, picklable, order-normalized;
* jitter streams derive from ``(seed, cell identity)``, never from
  grid position, so reordered and parallel grids reproduce serial
  results bit-for-bit;
* the deprecated kwargs entry points produce results identical to the
  spec path while warning;
* worker-process sweeps merge trace-cache counters and telemetry back
  into the parent.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core import telemetry
from repro.core.results import ExperimentResult, RunStatus
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec, derive_cell_seed
from repro.core.trace_cache import TraceCache
from repro.des.faults import named_plan
from repro.platforms.registry import PLATFORM_NAMES

#: a cheap 2x1x2 grid used throughout (small mini-scale datasets)
GRID = SweepSpec.make(
    "test:grid",
    platforms=("giraph", "graphlab"),
    algorithms=("bfs",),
    datasets=("amazon", "wikitalk"),
)


def records_equal(a, b) -> bool:
    """Bit-identity of the fields the paper reports."""
    return (
        a.platform == b.platform
        and a.algorithm == b.algorithm
        and a.dataset == b.dataset
        and a.status == b.status
        and a.execution_time == b.execution_time
        and a.repetition_times == b.repetition_times
        and a.failure_reason == b.failure_reason
        and a.fault_accounting() == b.fault_accounting()
    )


class TestRunSpec:
    def test_frozen_hashable_and_order_normalized(self):
        a = RunSpec.make("Giraph", "BFS", "Amazon", max_steps=5, combiner=True)
        b = RunSpec.make("giraph", "bfs", "amazon", combiner=True, max_steps=5)
        assert a == b
        assert hash(a) == hash(b)
        assert a.params_dict() == {"max_steps": 5, "combiner": True}
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            a.platform = "hadoop"  # type: ignore[misc]

    def test_picklable(self):
        spec = RunSpec.make("giraph", "bfs", "amazon", max_steps=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cell_key() == spec.cell_key()

    def test_cell_key_ignores_object_identity(self, random_graph):
        named = RunSpec("giraph", "bfs", "amazon")
        adhoc = RunSpec("giraph", "bfs", random_graph)
        assert named.is_named
        assert not adhoc.is_named
        assert adhoc.dataset_name == random_graph.name

    def test_sweep_cells_canonical_order(self):
        cells = list(GRID.cells())
        assert len(cells) == len(GRID) == 4
        # algorithm-major, then dataset, then platform
        assert [(c.algorithm, c.dataset, c.platform) for c in cells] == [
            ("bfs", "amazon", "giraph"),
            ("bfs", "amazon", "graphlab"),
            ("bfs", "wikitalk", "giraph"),
            ("bfs", "wikitalk", "graphlab"),
        ]

    def test_sweep_validates_workers(self):
        with pytest.raises(ValueError):
            SweepSpec.make(
                "bad", platforms=("giraph",), algorithms=("bfs",),
                datasets=("amazon",), workers=0,
            )


class TestCellSeed:
    def test_seed_is_pure_function_of_identity(self):
        a = RunSpec("giraph", "bfs", "amazon")
        b = RunSpec("giraph", "bfs", "amazon")
        c = RunSpec("graphlab", "bfs", "amazon")
        assert derive_cell_seed(202, a) == derive_cell_seed(202, b)
        assert derive_cell_seed(202, a) != derive_cell_seed(202, c)
        assert derive_cell_seed(202, a) != derive_cell_seed(203, a)

    def test_explicit_seed_wins(self):
        spec = RunSpec("giraph", "bfs", "amazon", seed=77)
        assert derive_cell_seed(202, spec) == 77

    def test_jitter_independent_of_grid_order(self):
        """Regression: cells used to share one RNG, so reordering the
        grid changed every jittered measurement."""
        forward = GRID
        backward = SweepSpec.make(
            "test:grid-reversed",
            platforms=tuple(reversed(GRID.platforms)),
            algorithms=GRID.algorithms,
            datasets=tuple(reversed(GRID.datasets)),
        )
        exp_f = Runner(jitter=0.03, repetitions=3).run_grid(forward)
        exp_b = Runner(jitter=0.03, repetitions=3).run_grid(backward)
        for rec in exp_f:
            twin = exp_b.get(rec.platform, rec.algorithm, rec.dataset)
            assert twin is not None
            assert records_equal(rec, twin), (
                f"grid order changed jittered results for "
                f"{rec.platform}/{rec.algorithm}/{rec.dataset}"
            )

    def test_jittered_repetitions_differ_within_cell(self):
        rec = Runner(jitter=0.03, repetitions=4).run(
            RunSpec("giraph", "bfs", "amazon")
        )
        assert len(set(rec.repetition_times)) > 1


class TestDeprecationShims:
    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    @pytest.mark.parametrize("algorithm", ["bfs", "conn"])
    def test_run_cell_shim_matches_spec_path(self, platform, algorithm):
        shim_runner = Runner(jitter=0.02, repetitions=2)
        spec_runner = Runner(jitter=0.02, repetitions=2)
        with pytest.warns(DeprecationWarning):
            via_shim = shim_runner.run_cell(platform, algorithm, "wikitalk")
        via_spec = spec_runner.run(RunSpec(platform, algorithm, "wikitalk"))
        assert records_equal(via_shim, via_spec)

    def test_legacy_run_grid_matches_sweepspec(self):
        with pytest.warns(DeprecationWarning):
            legacy = Runner().run_grid(
                "test:legacy",
                platforms=list(GRID.platforms),
                algorithms=list(GRID.algorithms),
                datasets=list(GRID.datasets),
            )
        modern = Runner().run_grid(GRID)
        assert len(legacy) == len(modern)
        for a, b in zip(legacy, modern):
            assert records_equal(a, b)

    def test_legacy_run_grid_requires_full_grid(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                Runner().run_grid("test:partial", platforms=["giraph"])

    def test_sweepspec_rejects_extra_grid_kwargs(self):
        with pytest.raises(TypeError):
            Runner().run_grid(GRID, platforms=["giraph"])


class TestParallelSweep:
    @pytest.mark.parametrize("jitter", [0.0, 0.03])
    @pytest.mark.parametrize("faulted", [False, True])
    def test_workers_bit_identical_to_serial(self, jitter, faulted):
        plan = (
            named_plan("straggler", at=2.0, node=0, duration=3.0,
                       severity=None)
            if faulted
            else None
        )
        sweep = SweepSpec.make(
            "test:parallel",
            platforms=GRID.platforms,
            algorithms=GRID.algorithms,
            datasets=GRID.datasets,
            fault_plan=plan,
        )
        serial = Runner(jitter=jitter, repetitions=3).run_grid(
            sweep, workers=1
        )
        for workers in (2, 4):
            parallel = Runner(jitter=jitter, repetitions=3).run_grid(
                sweep, workers=workers
            )
            assert len(parallel) == len(serial)
            for a, b in zip(serial, parallel):
                assert records_equal(a, b), (
                    f"workers={workers} diverged on "
                    f"{a.platform}/{a.algorithm}/{a.dataset}"
                )

    def test_record_order_is_canonical(self):
        exp = Runner().run_grid(GRID, workers=2)
        got = [(r.algorithm, r.dataset, r.platform) for r in exp]
        want = [
            (c.algorithm, c.dataset, c.platform) for c in GRID.cells()
        ]
        assert got == want

    def test_counter_merge_accounts_every_cell(self):
        runner = Runner()
        exp = runner.run_grid(GRID, workers=2)
        assert all(r.status is RunStatus.OK for r in exp)
        cache = runner.trace_cache
        # every worker-side lookup was folded back into the parent
        assert cache.hits + cache.misses == len(GRID)
        # the 2 distinct (algorithm, dataset) workloads were published
        # to the spill directory and crossed a process boundary at
        # least once
        assert cache.disk_stores >= 2
        assert cache.record_seconds > 0
        stats = runner.cache_stats()
        assert stats["disk_hits"] == cache.disk_hits
        assert stats["disk_stores"] == cache.disk_stores

    def test_parent_cache_warm_after_parallel_sweep(self):
        runner = Runner()
        runner.run_grid(GRID, workers=2)
        before = runner.trace_cache.misses
        runner.run(RunSpec("neo4j", "bfs", "amazon"))
        assert runner.trace_cache.misses == before

    def test_adhoc_cells_cannot_be_dispatched(self, random_graph):
        from repro.core.sweep import run_sweep

        sweep = SweepSpec.make(
            "test:adhoc", platforms=("giraph",), algorithms=("bfs",),
            datasets=("amazon",),
        )
        specs = [RunSpec("giraph", "bfs", random_graph)]
        runner = Runner()

        class _FakeSweep:
            name = "fake"
            datasets = ()

            def cells(self):
                return iter(specs)

        with pytest.raises(ValueError):
            run_sweep(runner, _FakeSweep(), workers=2)  # type: ignore[arg-type]
        # the public surface refuses too: ad-hoc datasets cannot appear
        # in a SweepSpec at all (names only), so run_grid stays safe
        assert all(spec.is_named for spec in sweep.cells())

    def test_spill_dir_shares_recordings_across_runners(self, tmp_path):
        spill = tmp_path / "traces"
        spill.mkdir()
        first = Runner(trace_cache=TraceCache(spill_dir=spill))
        first.run_grid(GRID, workers=2)
        assert list(spill.glob("*.trace.pkl"))

        second = Runner(trace_cache=TraceCache(spill_dir=spill))
        second.run(RunSpec("giraph", "bfs", "amazon"))
        assert second.trace_cache.misses == 0
        assert second.trace_cache.disk_hits == 1

    def test_telemetry_sessions_survive_worker_roundtrip(self):
        runner = Runner()
        with telemetry.enabled():
            exp = runner.run_grid(GRID, workers=2)
        sessions = [r.result.telemetry for r in exp if r.result is not None]
        assert len(sessions) == len(GRID)
        assert all(s is not None for s in sessions)
        # each session carries its full provenance tree back across the
        # process boundary: a root job span plus cost spans below it
        for session in sessions:
            assert session.span(0).kind == "job"
            assert len(list(session.to_jsonl_dicts())) > 1
        # merging the (possibly empty) per-cell counters never raises
        assert telemetry.merge_counters(sessions) == {}


class TestExportDispatch:
    def test_unknown_kind_raises(self, tmp_path):
        from repro.core.export import export

        with pytest.raises(ValueError, match="unknown export kind"):
            export(ExperimentResult("x"), kind="nope", path=tmp_path / "x")

    def test_type_mismatch_raises(self, tmp_path):
        from repro.core.export import export

        with pytest.raises(TypeError, match="expects ExperimentResult"):
            export(object(), kind="records", path=tmp_path / "x.json")

    def test_records_roundtrip(self, tmp_path):
        from repro.core.export import export

        exp = Runner().run_grid(GRID)
        path = tmp_path / "records.json"
        export(exp, kind="records", path=path)
        doc = json.loads(path.read_text())
        assert doc["experiment"] == GRID.name
        assert len(doc["records"]) == len(GRID)

    def test_sweep_telemetry_merges_counters(self, tmp_path):
        from repro.core.export import export

        runner = Runner()
        with telemetry.enabled():
            exp = runner.run_grid(GRID, workers=2)
        path = tmp_path / "sweep.jsonl"
        n = export(
            exp, kind="sweep-telemetry", path=path,
            extra_counters=runner.cache_stats(),
        )
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n
        assert lines[0] == {"type": "sweep", "name": GRID.name}
        cells = [l for l in lines if l["type"] == "cell"]
        assert len(cells) == len(GRID)
        merged = [l for l in lines if l["type"] == "merged_counter"]
        names = {l["name"] for l in merged}
        assert "hits" in names and "misses" in names
        # merged counters carry their provenance: the schema stamp and
        # the worker pids whose sessions were folded together
        for line in merged:
            assert line["schema"] == telemetry.TELEMETRY_SCHEMA
            assert line["worker_ids"]
        session_ids = {
            l["worker_id"] for l in lines
            if l["type"] == "meta" and "worker_id" in l
        }
        assert set(merged[0]["worker_ids"]) == session_ids


class TestFaultPlanCellIsolation:
    """Regression net: two cells differing only in ``fault_plan`` are
    *different experiments* — they must never share a trace-cache entry
    or a derived jitter seed (a shared entry would replay a faulted
    trace into a fault-free cell, or vice versa)."""

    def test_fault_plans_never_share_derived_seed(self):
        from repro.core.spec import derive_cell_seed

        plain = RunSpec("giraph", "bfs", "amazon")
        crashed = RunSpec(
            "giraph", "bfs", "amazon",
            fault_plan=named_plan("crash", at=5.0),
        )
        slowed = RunSpec(
            "giraph", "bfs", "amazon",
            fault_plan=named_plan("straggler", at=2.0, duration=3.0),
        )
        seeds = {
            derive_cell_seed(202, spec) for spec in (plain, crashed, slowed)
        }
        assert len(seeds) == 3

    def test_fault_plans_never_share_trace_keys(self):
        from repro.core.trace_cache import trace_key
        from repro.datasets.registry import load_dataset
        from repro.des.faults import FaultPlan

        graph = load_dataset("amazon", scale=1.0)

        def key(plan):
            return trace_key(
                "bfs", graph, dataset="amazon", scale=1.0, params={},
                fault_plan=plan,
            )

        plain = key(None)
        crashed = key(named_plan("crash", at=5.0))
        slowed = key(named_plan("straggler", at=2.0, duration=3.0))
        assert len({plain, crashed, slowed}) == 3
        # the empty plan is behaviourally identical to no plan: shared
        assert key(FaultPlan.empty()) == plain

    def test_runner_records_distinct_cache_entries_per_plan(self):
        runner = Runner()
        runner.run(RunSpec("hadoop", "bfs", "amazon"))
        assert runner.trace_cache.misses == 1
        runner.run(RunSpec(
            "hadoop", "bfs", "amazon",
            fault_plan=named_plan("straggler", at=2.0, duration=3.0),
        ))
        assert runner.trace_cache.misses == 2  # no entry sharing
        # replaying either cell hits its own entry
        runner.run(RunSpec("hadoop", "bfs", "amazon"))
        assert runner.trace_cache.misses == 2
        assert runner.trace_cache.hits >= 1


class TestDiscoveryAPI:
    def test_listings_are_sorted_and_described(self):
        from repro.algorithms.base import list_algorithms
        from repro.datasets.registry import list_datasets
        from repro.platforms.registry import list_platforms

        for listing in (list_platforms(), list_algorithms(), list_datasets()):
            names = [name for name, _ in listing]
            assert names == sorted(names)
            assert all(desc for _, desc in listing)
        assert {n for n, _ in list_platforms()} == set(PLATFORM_NAMES)

    def test_cli_validator_points_at_graphbench_list(self):
        import argparse

        from repro.cli import _known

        with pytest.raises(argparse.ArgumentTypeError, match="graphbench list"):
            _known("platform")("pregelix")
        assert _known("dataset")("AMAZON") == "amazon"

    def test_graphbench_list_runs(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("giraph", "bfs", "amazon"):
            assert name in out

    def test_graphbench_grid_sweep_cli(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "tel.jsonl"
        rc = main([
            "sweep", "--mode", "grid",
            "--platforms", "giraph", "graphlab",
            "--algorithms", "bfs",
            "--datasets", "amazon",
            "--workers", "2",
            "--json", str(path),
        ])
        assert rc == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "2 worker process(es)" in out
