"""Edge-case robustness for the platform models."""

import numpy as np
import pytest

from repro.cluster.spec import das4_cluster
from repro.graph.builder import empty_graph, from_edges
from repro.platforms import get_platform
from repro.platforms.registry import PLATFORM_NAMES


@pytest.fixture
def single_edge_graph():
    return from_edges(2, np.array([[0, 1]]), directed=False, name="pair")


@pytest.mark.parametrize("platform", PLATFORM_NAMES)
class TestDegenerateGraphs:
    def test_single_edge(self, platform, single_edge_graph, small_cluster):
        r = get_platform(platform).run("bfs", single_edge_graph, small_cluster)
        assert r.execution_time > 0
        assert np.array_equal(r.output, [0, 1])

    def test_edgeless_graph(self, platform, small_cluster):
        g = empty_graph(5, directed=False, name="edgeless")
        r = get_platform(platform).run("conn", g, small_cluster)
        assert r.output.tolist() == [0, 1, 2, 3, 4]

    def test_single_vertex(self, platform, small_cluster):
        g = empty_graph(1, directed=True, name="dot")
        r = get_platform(platform).run("bfs", g, small_cluster, source=0)
        assert r.output.tolist() == [0]


class TestParameterForwarding:
    def test_bfs_source_forwarded(self, random_graph, small_cluster):
        r = get_platform("giraph").run(
            "bfs", random_graph, small_cluster, source=7
        )
        assert r.output[7] == 0

    def test_cd_iteration_cap_forwarded(self, random_graph, small_cluster):
        r = get_platform("giraph").run(
            "cd", random_graph, small_cluster, max_iterations=2
        )
        assert r.supersteps <= 2

    def test_custom_timeout_triggers_dnf(self):
        from repro.datasets import load_dataset
        from repro.platforms import JobTimeout

        g = load_dataset("kgs")
        with pytest.raises(JobTimeout):
            get_platform("hadoop").run("bfs", g, das4_cluster(), timeout=1.0)


class TestClusterVariants:
    @pytest.mark.parametrize("platform", ["hadoop", "giraph", "graphlab"])
    def test_single_worker_cluster(self, platform, random_graph):
        c = das4_cluster(num_workers=1)
        r = get_platform(platform).run("bfs", random_graph, c)
        assert r.execution_time > 0

    @pytest.mark.parametrize("platform", ["hadoop", "stratosphere"])
    def test_many_cores(self, platform, random_graph):
        c = das4_cluster(num_workers=2, cores_per_worker=7)
        r = get_platform(platform).run("bfs", random_graph, c)
        assert r.execution_time > 0

    def test_more_workers_never_changes_output(self, random_graph):
        a = get_platform("giraph").run("conn", random_graph, das4_cluster(2))
        b = get_platform("giraph").run("conn", random_graph, das4_cluster(50))
        assert np.array_equal(a.output, b.output)


class TestTraceSanity:
    @pytest.mark.parametrize("platform", ["hadoop", "stratosphere", "giraph",
                                          "graphlab"])
    def test_worker_cpu_within_physical_bounds(self, platform, random_graph,
                                               small_cluster):
        r = get_platform(platform).run("bfs", random_graph, small_cluster)
        from repro.cluster.monitoring import worker_node

        cpu = r.trace.series(worker_node(0), "cpu", num_points=50)
        assert np.all(cpu >= 0)
        assert np.all(cpu <= 1.0 + 1e-9)

    @pytest.mark.parametrize("platform", ["hadoop", "stratosphere", "giraph",
                                          "graphlab"])
    def test_worker_memory_within_node(self, platform, random_graph,
                                       small_cluster):
        r = get_platform(platform).run("bfs", random_graph, small_cluster)
        from repro.cluster.monitoring import worker_node

        mem = r.trace.series(worker_node(0), "memory", num_points=50)
        assert np.all(mem <= small_cluster.machine.memory_bytes * 1.01)
