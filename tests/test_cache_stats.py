"""Runner cache/memo counters across repeated cells and shared caches.

Pins the observability contract of `Runner.cache_stats()` (trace-cache
hits/misses/bytes merged with the process-wide partition-context step
memo) and the recording-wall accounting fix: `trace_record` wall time
is charged to a cell's result only when that call actually recorded
the trace — never on a cache hit.
"""

from __future__ import annotations

import pytest

from repro.core.runner import Runner
from repro.core.spec import RunSpec
from repro.core.trace_cache import TraceCache


@pytest.fixture
def runner():
    return Runner()


class TestCacheStatsCounters:
    def test_repeated_run_hits_after_first_miss(self, runner):
        runner.run(RunSpec("giraph", "bfs", "amazon"))
        s1 = runner.cache_stats()
        assert (s1["misses"], s1["hits"], s1["entries"]) == (1, 0, 1)

        runner.run(RunSpec("giraph", "bfs", "amazon"))
        s2 = runner.cache_stats()
        assert (s2["misses"], s2["hits"], s2["entries"]) == (1, 1, 1)
        assert s2["hit_rate"] == 0.5

    def test_platform_sweep_shares_one_recording(self, runner):
        for plat in ("hadoop", "stratosphere", "giraph", "graphlab"):
            runner.run(RunSpec(plat, "bfs", "amazon"))
        stats = runner.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 3
        assert stats["trace_bytes"] > 0

    def test_distinct_cells_record_separately(self, runner):
        runner.run(RunSpec("giraph", "bfs", "amazon"))
        runner.run(RunSpec("giraph", "conn", "amazon"))
        stats = runner.cache_stats()
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_shared_trace_cache_across_runners(self):
        shared = TraceCache()
        a = Runner(trace_cache=shared)
        b = Runner(trace_cache=shared)
        a.run(RunSpec("giraph", "bfs", "amazon"))
        b.run(RunSpec("graphlab", "bfs", "amazon"))
        assert shared.misses == 1
        assert shared.hits == 1
        assert b.cache_stats()["hits"] == 1

    def test_step_memo_counters_flow_through(self, runner):
        from repro.platforms.registry import context_memo_stats

        before = context_memo_stats()["step_memo_hits"]
        # Same graph, same (parts, partitioner) -> shared context; the
        # replayed trace's pinned reports hit the per-report step memo.
        runner.run(RunSpec("giraph", "bfs", "amazon"))
        runner.run(RunSpec("hadoop", "bfs", "amazon"))
        stats = runner.cache_stats()
        assert stats["step_memo_hits"] > before
        assert "contexts" in stats
        assert "step_memo_entries" in stats

    def test_cache_disabled_runner_counts_nothing(self):
        runner = Runner(use_trace_cache=False)
        rec = runner.run(RunSpec("giraph", "bfs", "amazon"))
        assert rec.ok
        stats = runner.cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["entries"] == 0


class TestRecordWallAccounting:
    def test_recording_cell_is_charged_once(self, runner):
        first = runner.run(RunSpec("giraph", "bfs", "amazon"))
        assert first.ok and first.result is not None
        assert first.result.wall_breakdown.get("trace_record", 0.0) > 0.0

    def test_cache_hit_cell_is_not_charged(self, runner):
        runner.run(RunSpec("giraph", "bfs", "amazon"))
        hit = runner.run(RunSpec("hadoop", "bfs", "amazon"))
        assert hit.ok and hit.result is not None
        assert "trace_record" not in hit.result.wall_breakdown
        wall_parts = sum(hit.result.wall_breakdown.values())
        assert hit.result.wall_time_seconds == pytest.approx(
            wall_parts, rel=1e-6, abs=1e-6
        )

    def test_replicated_repetitions_bill_recording_once(self):
        runner = Runner(repetitions=5)
        rec = runner.run(RunSpec("giraph", "bfs", "amazon"))
        assert rec.ok and rec.result is not None
        assert len(rec.repetition_times) == 5
        wall = rec.result.wall_breakdown["trace_record"]
        assert wall == pytest.approx(
            runner.trace_cache.record_seconds, rel=1e-6
        )
