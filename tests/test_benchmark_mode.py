"""Benchmark mode: workloads, validators, scale factors, grid, report.

The Graphalytics-style contract under test: every workload's platform
output validates PASS against an independently computed reference, and
any perturbation of that output — a flipped label, an off-by-epsilon
rank — flips the verdict to FAIL.  The ``BenchmarkGrid`` memo layer
must be invisible: records obtained through it are bit-identical to
direct ``Runner`` runs.
"""

import json

import numpy as np
import pytest

from repro.core.benchmark import (
    ALL_PLATFORMS,
    BenchmarkGrid,
    run_benchmark,
)
from repro.core.export import export
from repro.core.report import BenchmarkCell, BenchmarkReport
from repro.core.runner import Runner
from repro.core.spec import RunSpec, SweepSpec
from repro.core.workloads import (
    WORKLOAD_NAMES,
    ValidationVerdict,
    Workload,
    get_workload,
    list_workloads,
    reference_output,
    validate_epsilon,
    validate_equivalence,
    validate_exact,
)
from repro.datasets import load_dataset
from repro.datasets.registry import (
    SCALE_FACTOR_NAMES,
    SCALE_FACTORS,
    list_scale_factors,
    resolve_scale,
    scale_factor,
)

TINY = resolve_scale("tiny")


# ---------------------------------------------------------------- validators
class TestValidateExact:
    def test_identical_arrays_pass(self):
        a = np.array([1, 2, 3])
        v = validate_exact(a, a.copy())
        assert v.passed and v.status == "PASS" and bool(v)

    def test_single_flipped_element_fails(self):
        ref = np.array([1, 2, 3])
        cand = ref.copy()
        cand[1] += 1
        v = validate_exact(ref, cand)
        assert not v.passed
        assert "1 of 3" in v.detail

    def test_shape_mismatch_fails(self):
        v = validate_exact(np.zeros(3), np.zeros(4))
        assert not v.passed and "shape" in v.detail

    def test_scalars(self):
        assert validate_exact(7, 7).passed
        assert not validate_exact(7, 8).passed

    def test_nan_equals_nan(self):
        a = np.array([1.0, np.nan])
        assert validate_exact(a, a.copy()).passed


class TestValidateEpsilon:
    def test_within_tolerance_passes(self):
        ref = np.array([1.0, 2.0, 3.0])
        v = validate_epsilon(ref, ref * (1 + 1e-6), epsilon=1e-4)
        assert v.passed

    def test_beyond_tolerance_fails(self):
        ref = np.array([1.0, 2.0, 3.0])
        v = validate_epsilon(ref, ref * 1.01, epsilon=1e-4)
        assert not v.passed and "relative error" in v.detail

    def test_near_zero_entries_do_not_vacuously_pass(self):
        # An entry near zero is judged against the vector's own scale,
        # so a grossly wrong value there still fails.
        ref = np.array([1.0, 1e-12])
        cand = np.array([1.0, 0.5])
        assert not validate_epsilon(ref, cand, epsilon=1e-4).passed

    def test_nonfinite_pattern_must_match(self):
        ref = np.array([1.0, np.inf])  # unreached SSSP vertex
        assert validate_epsilon(ref, ref.copy()).passed
        assert not validate_epsilon(ref, np.array([1.0, 9.9])).passed

    def test_shape_mismatch_fails(self):
        assert not validate_epsilon(np.zeros(2), np.zeros(3)).passed


class TestValidateEquivalence:
    def test_relabelled_partition_passes(self):
        ref = np.array([0, 0, 1, 1, 2])
        cand = np.array([7, 7, 3, 3, 5])  # same classes, new names
        v = validate_equivalence(ref, cand)
        assert v.passed and "3 classes" in v.detail

    def test_merged_classes_fail(self):
        ref = np.array([0, 0, 1, 1])
        cand = np.array([0, 0, 0, 0])
        assert not validate_equivalence(ref, cand).passed

    def test_split_class_fails(self):
        ref = np.array([0, 0, 0, 0])
        cand = np.array([0, 1, 0, 0])
        assert not validate_equivalence(ref, cand).passed

    def test_shape_mismatch_fails(self):
        assert not validate_equivalence(np.zeros(2), np.zeros(3)).passed


# ---------------------------------------------------------------- registry
class TestWorkloadRegistry:
    def test_canonical_names(self):
        assert len(WORKLOAD_NAMES) == 11
        assert WORKLOAD_NAMES[:6] == ("bfs", "wcc", "cdlp", "pr", "sssp",
                                      "lcc")

    def test_lookup_is_case_insensitive(self):
        assert get_workload("WCC") is get_workload("wcc")

    def test_unknown_workload_names_choices(self):
        with pytest.raises(KeyError, match="cdlp"):
            get_workload("nope")

    def test_list_workloads_is_discovery_shaped(self):
        pairs = list_workloads()
        assert [name for name, _ in pairs] == list(WORKLOAD_NAMES)
        for _, desc in pairs:
            assert "validation" in desc

    def test_bad_semantics_rejected(self):
        with pytest.raises(ValueError, match="semantics"):
            Workload("x", "bfs", "X", "desc", semantics="fuzzy")

    def test_paper_algorithm_mapping(self):
        assert get_workload("wcc").algorithm == "conn"
        assert get_workload("cdlp").algorithm == "cd"
        assert get_workload("pr").semantics == "epsilon"


# --------------------------------------------------- reference validation
def _perturb(wl: Workload, canonical: object) -> np.ndarray:
    """A minimal wrong answer for ``wl``'s semantics."""
    arr = np.asarray(canonical)
    if wl.semantics == "equivalence":
        flat = arr.reshape(-1).copy()
        if len(np.unique(flat)) > 1:
            flat[:] = flat[0]  # merge every class into one
        else:
            flat[0] = flat[0] + 1  # split the single class
        return flat.reshape(arr.shape)
    if wl.semantics == "epsilon":
        out = arr.astype(np.float64).copy()
        finite = np.isfinite(out.reshape(-1))
        idx = int(np.argmax(finite))
        scale = max(1.0, float(np.abs(out.reshape(-1)[finite]).max()))
        out.reshape(-1)[idx] += 1e3 * wl.epsilon * scale
        return out
    # exact
    out = arr.copy()
    if out.ndim == 0:
        return out + 1
    flat = out.reshape(-1)
    flat[0] = ~flat[0] if out.dtype == bool else flat[0] + 1
    return out


@pytest.mark.parametrize("wl_name", WORKLOAD_NAMES)
class TestReferenceValidation:
    def test_platform_output_validates_pass(self, wl_name):
        wl = get_workload(wl_name)
        runner = Runner(scale=TINY)
        graph = load_dataset("kgs", scale="tiny")
        reference = reference_output(wl, graph)
        for platform in ("giraph", "graphlab"):
            rec = runner.run(RunSpec.make(
                platform, wl.algorithm, "kgs", **wl.params_dict(),
            ))
            assert rec.ok, (platform, wl_name, rec.failure_reason)
            verdict = wl.validate(reference, rec.result.output)
            assert verdict.passed, (platform, wl_name, verdict.detail)

    def test_perturbed_output_flips_to_fail(self, wl_name):
        wl = get_workload(wl_name)
        graph = load_dataset("kgs", scale="tiny")
        reference = reference_output(wl, graph)
        wrong = _perturb(wl, wl._canonical(reference))
        verdict = wl.validate(reference, wrong)
        assert not verdict.passed, (wl_name, verdict.detail)
        assert verdict.status == "FAIL"


# ---------------------------------------------------------------- scales
class TestScaleFactors:
    def test_named_factors(self):
        assert SCALE_FACTOR_NAMES == ("tiny", "xs", "s", "m", "l", "xl")
        assert resolve_scale("tiny") == 0.125
        assert resolve_scale("m") == 1.0

    def test_numeric_strings_and_floats_pass_through(self):
        assert resolve_scale("0.5") == 0.5
        assert resolve_scale(2.0) == 2.0

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="tiny"):
            resolve_scale("huge")
        with pytest.raises(KeyError, match="tiny"):
            scale_factor("huge")

    def test_content_hashes_are_stable_and_distinct(self):
        hashes = {scale_factor(n).content_hash() for n in SCALE_FACTOR_NAMES}
        assert len(hashes) == len(SCALE_FACTOR_NAMES)
        for h in hashes:
            assert len(h) == 16 and int(h, 16) >= 0
        assert scale_factor("tiny").content_hash() == \
            scale_factor("tiny").content_hash()

    def test_multipliers_double_up_the_ladder(self):
        mults = [SCALE_FACTORS[n].multiplier for n in SCALE_FACTOR_NAMES]
        assert mults == sorted(mults)
        for small, large in zip(mults, mults[1:]):
            assert large == 2 * small

    def test_named_scale_aliases_numeric_cache(self):
        g_named = load_dataset("kgs", scale="m")
        g_float = load_dataset("kgs", scale=1.0)
        assert g_named is g_float

    def test_targets_scale_with_multiplier(self):
        from repro.datasets.registry import dataset_spec

        kgs = dataset_spec("kgs")
        tiny, xl = scale_factor("tiny"), scale_factor("xl")
        v_tiny = tiny.target_vertices(kgs)
        assert xl.target_vertices(kgs) > v_tiny
        assert tiny.target_edges(kgs) >= v_tiny  # avg degree >= 1

    def test_list_scale_factors_discovery(self):
        pairs = list_scale_factors()
        assert [name for name, _ in pairs] == list(SCALE_FACTOR_NAMES)
        assert any("x0.125" in desc for _, desc in pairs)


# ---------------------------------------------------------------- grid
class TestBenchmarkGrid:
    def test_repeat_run_returns_memoized_record(self):
        grid = BenchmarkGrid(Runner())
        a = grid.run(RunSpec("giraph", "bfs", "kgs"))
        b = grid.run(RunSpec("giraph", "bfs", "kgs"))
        assert a is b
        assert len(grid) == 1

    def test_sweep_and_single_cell_share_records(self):
        grid = BenchmarkGrid(Runner())
        sweep = SweepSpec.make(
            "g", platforms=["giraph", "hadoop"],
            algorithms=["bfs"], datasets=["kgs"],
        )
        exp = grid.run_sweep(sweep)
        rec = grid.run(RunSpec("giraph", "bfs", "kgs"))
        assert rec is exp.get("giraph", "bfs", "kgs")

    def test_grid_record_bit_identical_to_direct_runner(self):
        spec = RunSpec("giraph", "bfs", "kgs")
        direct = Runner().run(spec)
        via_grid = BenchmarkGrid(Runner()).run(spec)
        assert via_grid.execution_time == direct.execution_time
        assert via_grid.result.breakdown == direct.result.breakdown
        assert via_grid.result.supersteps == direct.result.supersteps

    def test_suite_figures_bit_identical_through_grid(self):
        """fig01 through the refactored grid path == direct Runner runs."""
        from repro.core.suite import BenchmarkSuite

        exp, _ = BenchmarkSuite().fig01_bfs()
        runner = Runner()
        for rec in exp.records:
            direct = runner.run(RunSpec(rec.platform, "bfs", rec.dataset))
            assert rec.status is direct.status, (rec.platform, rec.dataset)
            assert rec.execution_time == direct.execution_time
            if rec.ok:
                assert rec.result.breakdown == direct.result.breakdown


# ---------------------------------------------------------------- driver
class TestRunBenchmark:
    @pytest.fixture(scope="class")
    def report(self):
        return run_benchmark(
            workloads=("bfs", "wcc", "pr"),
            platforms=("giraph", "graphlab"),
            datasets=("kgs",),
            scale="tiny",
            name="unit",
        )

    def test_all_cells_validate_pass(self, report):
        assert len(report.cells) == 3 * 2 * 1
        assert report.all_validated
        for cell in report.cells:
            assert cell.ok and cell.validated
            assert cell.verdict.passed
            assert "PASS" in cell.describe()

    def test_scale_identity_resolved(self, report):
        assert report.scale == TINY
        assert report.scale_name == "tiny"
        assert report.scale_hash == scale_factor("tiny").content_hash()

    def test_targets_match_generated_graphs(self, report):
        (t,) = report.targets
        assert t["dataset"] == "kgs"
        assert t["actual_vertices"] == t["target_vertices"]

    def test_summary_counts(self, report):
        s = report.summary()
        assert s["cells"] == 6
        assert s["validated_pass"] == 6
        assert s["validated_fail"] == 0
        assert s["failures"] == 0
        assert s["all_validated"] is True

    def test_render_contains_grid_and_verdicts(self, report):
        text = report.render()
        assert "PASS" in text
        assert "tiny" in text
        assert "PageRank" in text
        assert "Validation" in text

    def test_to_dict_and_export_roundtrip(self, report, tmp_path):
        path = tmp_path / "bench.json"
        export(report, kind="benchmark", path=path)
        doc = json.loads(path.read_text())
        assert doc["report"] == "unit"
        assert doc["scale"]["name"] == "tiny"
        assert len(doc["cells"]) == 6
        for cell in doc["cells"]:
            assert cell["validation"]["status"] == "PASS"
        assert doc["summary"]["all_validated"] is True

    def test_numeric_scale_equal_to_named_factor_gets_name(self):
        rep = run_benchmark(
            workloads=("bfs",), platforms=("giraph",), datasets=("kgs",),
            scale=0.125,
        )
        assert rep.scale_name == "tiny"

    def test_mismatched_runner_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            run_benchmark(
                workloads=("bfs",), platforms=("giraph",),
                datasets=("kgs",), scale="tiny", runner=Runner(scale=1.0),
            )

    def test_failed_cells_have_no_verdict(self):
        # neo4j exceeds its time budget on dotaleague at full scale:
        # the cell lands in failures(), not in the validation counts.
        rep = run_benchmark(
            workloads=("stats",), platforms=("neo4j",),
            datasets=("dotaleague",), scale="m",
        )
        (cell,) = rep.cells
        assert not cell.ok and cell.verdict is None
        assert not cell.validated
        assert rep.failures() == [cell]
        assert rep.all_validated  # nothing validated FAIL
        assert cell.describe() == "DNF"

    def test_get_addresses_cells(self, report):
        cell = report.get("pr", "graphlab", "kgs")
        assert isinstance(cell, BenchmarkCell)
        assert report.get("pr", "neo4j", "kgs") is None


class TestWallBudget:
    """Satellite: per-workload target wall budgets WARN, never FAIL."""

    def _cell(self, execution_time, wall_budget):
        return BenchmarkCell(
            workload="bfs", platform="giraph", dataset="kgs", status="ok",
            execution_time=execution_time,
            verdict=ValidationVerdict(True, "exact", "bit-identical"),
            wall_budget=wall_budget,
        )

    def test_every_workload_declares_the_paper_hour(self):
        # Section 3.2: experiments are capped at one hour of processing
        for name in WORKLOAD_NAMES:
            assert get_workload(name).target_wall_budget == 3600.0

    def test_budget_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="target_wall_budget"):
            Workload(
                "bad", "bfs", "Bad", "x", semantics="exact",
                target_wall_budget=0.0,
            )
        wl = Workload(
            "free", "bfs", "Free", "x", semantics="exact",
            target_wall_budget=None,
        )
        assert wl.target_wall_budget is None

    def test_over_budget_is_a_warn_not_a_fail(self):
        over = self._cell(4000.0, 3600.0)
        assert over.over_budget
        assert over.validated  # WARN does not flip validation
        assert over.describe().endswith("WARN")
        under = self._cell(100.0, 3600.0)
        unbudgeted = self._cell(4000.0, None)
        assert not under.over_budget and not unbudgeted.over_budget
        assert "WARN" not in under.describe()

    def test_report_counts_and_renders_warnings(self):
        report = run_benchmark(
            workloads=("bfs",), platforms=("giraph",), datasets=("kgs",),
            scale="tiny", name="budget-unit",
        )
        (cell,) = report.cells
        assert cell.wall_budget == 3600.0
        assert not cell.over_budget  # tiny scale is far under an hour
        assert report.summary()["budget_warnings"] == 0

        import dataclasses

        report.cells[0] = dataclasses.replace(cell, wall_budget=1e-9)
        assert report.budget_warnings() == [report.cells[0]]
        assert report.summary()["budget_warnings"] == 1
        assert report.all_validated  # still not a failure
        text = report.render()
        assert "Wall-budget warnings" in text
        assert "WARN" in text
        doc = report.to_dict()
        assert doc["cells"][0]["over_budget"] is True
        assert doc["cells"][0]["wall_budget"] == 1e-9


@pytest.mark.slow
def test_full_tiny_grid_all_completed_cells_pass():
    """The acceptance sweep: every workload on every platform and
    dataset at the smallest scale — each completed cell must PASS."""
    report = run_benchmark(workloads="all", scale="tiny")
    assert isinstance(report, BenchmarkReport)
    assert report.all_validated
    completed = [c for c in report.cells if c.ok]
    assert completed, "no cell completed"
    for cell in completed:
        assert cell.verdict is not None and cell.verdict.passed


# ---------------------------------------------------------------- CLI
class TestBenchmarkCli:
    def test_benchmark_command_smoke(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "benchmark", "--workloads", "bfs", "--platforms", "giraph",
            "--datasets", "kgs", "--scale", "tiny", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "PASS" in text
        doc = json.loads(out.read_text())
        assert doc["summary"]["all_validated"] is True

    def test_list_workloads_and_scale_factors(self, capsys):
        from repro.cli import main

        assert main(["list", "workloads"]) == 0
        assert "cdlp" in capsys.readouterr().out
        assert main(["list", "scale-factors"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "x0.125" in out

    def test_unknown_workload_is_an_argument_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["benchmark", "--workloads", "nope"])
        assert exc.value.code == 2
        assert "graphbench list workloads" in capsys.readouterr().err

    def test_unknown_scale_is_an_argument_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["benchmark", "--scale", "huge"])
        assert exc.value.code == 2
        assert "scale" in capsys.readouterr().err
