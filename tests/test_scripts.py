"""Light checks on the repo scripts (structure, not full execution —
the scripts themselves take tens of minutes)."""

import importlib.util
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"scripts_{name}", SCRIPTS / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestMakeExperiments:
    def test_every_section_method_exists(self):
        from repro.core.suite import BenchmarkSuite

        mod = _load("make_experiments")
        for method, _title, commentary in mod.SECTIONS:
            assert hasattr(BenchmarkSuite, method), method
            assert commentary.strip()

    def test_sections_cover_all_numbered_artifacts(self):
        mod = _load("make_experiments")
        methods = {m for m, _, _ in mod.SECTIONS}
        # all four measured tables and all figure groups appear
        for required in (
            "table2_datasets", "table5_bfs_statistics", "table6_ingestion",
            "table7_dev_effort", "fig01_bfs", "fig02_throughput",
            "fig03_giraph_all", "fig04_dotaleague",
            "fig05_07_master_resources", "fig08_10_worker_resources",
            "fig11_12_horizontal", "fig13_14_vertical",
            "fig15_breakdown", "fig16_graphlab_breakdown",
        ):
            assert required in methods, required

    def test_header_mentions_simulated_seconds(self):
        mod = _load("make_experiments")
        assert "simulated seconds" in mod.HEADER


class TestBenchSnapshot:
    def test_helpers_import(self):
        mod = _load("bench_snapshot")
        assert callable(mod.main)
        assert callable(mod.collect_snapshot)

    def test_bench_measure_functions_exist(self):
        # The script reuses the benches' measure functions — keep the
        # contract visible here so a bench refactor cannot silently
        # break the CI snapshot.
        mod = _load("bench_snapshot")
        mod._ensure_benchmarks_importable()
        from benchmarks.bench_sparse_reports import (
            measure_sparse_vs_dense,
            render_sparse_vs_dense,
        )
        from benchmarks.bench_trace_cache import measure_cold_vs_warm

        assert callable(measure_sparse_vs_dense)
        assert callable(render_sparse_vs_dense)
        assert callable(measure_cold_vs_warm)


class TestExportFigures:
    def test_helpers_import(self):
        mod = _load("export_figures")
        assert callable(mod.main)
        assert "gnuplot" in mod.GNUPLOT_HEADER

    def test_series_from_grid_handles_missing_cells(self):
        mod = _load("export_figures")

        class FakeExp:
            def get(self, plat, algo, ds):
                return None

        out = mod._series_from_grid(FakeExp(), ["a"], ["x", "y"], lambda r: 1)
        assert out == {"a": [None, None]}
