"""Light checks on the repo scripts (structure, not full execution —
the scripts themselves take tens of minutes)."""

import importlib.util
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"scripts_{name}", SCRIPTS / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestMakeExperiments:
    def test_every_section_method_exists(self):
        from repro.core.suite import BenchmarkSuite

        mod = _load("make_experiments")
        for method, _title, commentary in mod.SECTIONS:
            assert hasattr(BenchmarkSuite, method), method
            assert commentary.strip()

    def test_sections_cover_all_numbered_artifacts(self):
        mod = _load("make_experiments")
        methods = {m for m, _, _ in mod.SECTIONS}
        # all four measured tables and all figure groups appear
        for required in (
            "table2_datasets", "table5_bfs_statistics", "table6_ingestion",
            "table7_dev_effort", "fig01_bfs", "fig02_throughput",
            "fig03_giraph_all", "fig04_dotaleague",
            "fig05_07_master_resources", "fig08_10_worker_resources",
            "fig11_12_horizontal", "fig13_14_vertical",
            "fig15_breakdown", "fig16_graphlab_breakdown",
        ):
            assert required in methods, required

    def test_header_mentions_simulated_seconds(self):
        mod = _load("make_experiments")
        assert "simulated seconds" in mod.HEADER


class TestBenchSnapshot:
    def test_helpers_import(self):
        mod = _load("bench_snapshot")
        assert callable(mod.main)
        assert callable(mod.collect_snapshot)

    def test_bench_measure_functions_exist(self):
        # The script reuses the benches' measure functions — keep the
        # contract visible here so a bench refactor cannot silently
        # break the CI snapshot.
        mod = _load("bench_snapshot")
        mod._ensure_benchmarks_importable()
        from benchmarks.bench_kernels import measure_kernels, render_kernels
        from benchmarks.bench_sparse_reports import (
            measure_sparse_vs_dense,
            render_sparse_vs_dense,
        )
        from benchmarks.bench_serve_load import measure_serve_load
        from benchmarks.bench_trace_cache import measure_cold_vs_warm

        assert callable(measure_sparse_vs_dense)
        assert callable(render_sparse_vs_dense)
        assert callable(measure_cold_vs_warm)
        assert callable(measure_kernels)
        assert callable(render_kernels)
        assert callable(measure_serve_load)

    def test_cores_recorded(self):
        mod = _load("bench_snapshot")
        assert mod._available_cores() >= 1


def _snapshot(*, cores=8, backend="numba", wall=1.0, ratio=4.0,
              identical=True, validated=True, obs_identical=True,
              overhead=0.01, utilization=0.9, warm_p99=0.01,
              serve_identical=True):
    """A minimal schema-5 document exercising every gate budget."""
    micro = {
        name: {"numpy_ms": wall, "active_ms": wall, "ratio": 1.0}
        for name in (
            "part_bincount", "comm_degrees", "cut_count",
            "gather_neighbors", "gather_with_sources", "scatter_min",
            "ldg_assign",
        )
    }
    return {
        "schema": 5,
        "cores": cores,
        "trace_cache": {
            "cold_seconds": wall, "warm_seconds": wall, "speedup": ratio,
        },
        "sparse_reports": {
            "sparse_wall": wall, "wall_ratio": ratio, "memory_ratio": 80.0,
        },
        "parallel_sweep": {
            "cores": cores, "speedup": ratio, "identical": identical,
        },
        "kernels": {
            "backend": backend,
            "micro": micro,
            "active_set_sweep": {"ratio": ratio},
        },
        "benchmark_mode": {
            "wall_seconds": wall,
            "cache_stats": {"record_seconds": wall},
            "summary": {"all_validated": validated},
        },
        "benchmark_mode_xs": {
            "wall_seconds": wall,
            "summary": {"all_validated": validated},
        },
        "harness_observability": {
            "cells": 8,
            "off_seconds": wall,
            "on_seconds": wall * (1.0 + overhead),
            "overhead_fraction": overhead,
            "identical": obs_identical,
            "utilization": utilization,
            "cell_wall_p50_seconds": wall / 10.0,
            "cell_wall_p99_seconds": wall,
            "events": 100,
            "cores": cores,
        },
        "serve": {
            "cells": 6,
            "warm_p99_seconds": warm_p99,
            "identical": serve_identical,
        },
    }


class TestPerfGate:
    def test_identical_snapshots_pass(self):
        mod = _load("perf_gate")
        assert mod.run_gate(_snapshot(), _snapshot()) == []

    def test_wall_regression_fails(self):
        mod = _load("perf_gate")
        current = _snapshot(wall=10.0)  # 10x the baseline, over 2.5x budget
        failures = mod.run_gate(current, _snapshot(wall=1.0))
        assert any("trace_cache.cold_seconds" in f for f in failures)
        assert any("benchmark_mode_xs.wall_seconds" in f for f in failures)

    def test_ratio_collapse_fails_on_big_machines(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(_snapshot(ratio=1.0), _snapshot(ratio=4.0))
        assert any("parallel_sweep.speedup" in f for f in failures)
        assert any("kernels.active_set_sweep.ratio" in f for f in failures)

    def test_ratio_budgets_skipped_below_four_cores(self):
        # Mirrors bench_parallel_sweep: a 1-core machine cannot
        # reproduce parallel ratios, so only walls stay enforced.
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(ratio=1.0, cores=1), _snapshot(ratio=4.0)
        )
        assert failures == []

    def test_kernel_ratio_skipped_without_numba_on_both(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(ratio=1.0, backend="numpy"), _snapshot(ratio=4.0)
        )
        assert not any("kernels" in f for f in failures)
        assert any("parallel_sweep.speedup" in f for f in failures)

    def test_correctness_flags_never_skipped(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(cores=1, identical=False, validated=False),
            _snapshot(cores=1),
        )
        assert any("parallel_sweep.identical" in f for f in failures)
        assert any("all_validated" in f for f in failures)

    def test_old_schema_baseline_skips_missing_metrics(self):
        mod = _load("perf_gate")
        baseline = _snapshot()
        del baseline["kernels"]
        del baseline["benchmark_mode_xs"]
        assert mod.run_gate(_snapshot(), baseline) == []

    def test_metric_missing_from_current_fails(self):
        mod = _load("perf_gate")
        current = _snapshot()
        del current["kernels"]
        failures = mod.run_gate(current, _snapshot())
        assert any("missing from current snapshot" in f for f in failures)

    def test_obs_overhead_ceiling_fails(self):
        # The overhead budget is an absolute ceiling, not
        # baseline-relative: a cheap baseline cannot excuse 5 %.
        mod = _load("perf_gate")
        failures = mod.run_gate(_snapshot(overhead=0.05), _snapshot())
        assert any(
            "harness_observability.overhead_fraction" in f for f in failures
        )

    def test_obs_overhead_skipped_below_four_cores(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(overhead=0.5, cores=1), _snapshot()
        )
        assert not any("overhead_fraction" in f for f in failures)

    def test_obs_utilization_skipped_below_four_cores(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(utilization=0.1, cores=1), _snapshot()
        )
        assert not any("utilization" in f for f in failures)

    def test_obs_identity_flag_never_skipped(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(cores=1, obs_identical=False), _snapshot(cores=1)
        )
        assert any("harness_observability.identical" in f for f in failures)

    def test_obs_metrics_missing_from_current_fails(self):
        mod = _load("perf_gate")
        current = _snapshot()
        del current["harness_observability"]
        failures = mod.run_gate(current, _snapshot())
        assert any(
            "harness_observability" in f and "missing from current" in f
            for f in failures
        )

    def test_obs_missing_from_baseline_skips(self):
        # a schema-3 baseline predates the observability section
        mod = _load("perf_gate")
        baseline = _snapshot()
        del baseline["harness_observability"]
        assert mod.run_gate(_snapshot(), baseline) == []

    def test_serve_warm_p99_ceiling_fails(self):
        # Absolute ceiling: a slow warm path fails regardless of what
        # the baseline measured.
        mod = _load("perf_gate")
        failures = mod.run_gate(_snapshot(warm_p99=1.5), _snapshot())
        assert any("serve.warm_p99_seconds" in f for f in failures)

    def test_serve_warm_p99_skipped_below_four_cores(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(warm_p99=1.5, cores=1), _snapshot()
        )
        assert not any("warm_p99" in f for f in failures)

    def test_serve_identity_flag_never_skipped(self):
        mod = _load("perf_gate")
        failures = mod.run_gate(
            _snapshot(cores=1, serve_identical=False), _snapshot(cores=1)
        )
        assert any("serve.identical" in f for f in failures)

    def test_serve_missing_from_baseline_skips(self):
        # a schema-4 baseline predates the serving layer
        mod = _load("perf_gate")
        baseline = _snapshot()
        del baseline["serve"]
        assert mod.run_gate(_snapshot(), baseline) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        import json

        mod = _load("perf_gate")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_snapshot()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_snapshot(wall=10.0)))
        assert mod.main([str(good), str(good)]) == 0
        assert mod.main([str(bad), str(good)]) == 1
        capsys.readouterr()


class TestExportFigures:
    def test_helpers_import(self):
        mod = _load("export_figures")
        assert callable(mod.main)
        assert "gnuplot" in mod.GNUPLOT_HEADER

    def test_series_from_grid_handles_missing_cells(self):
        mod = _load("export_figures")

        class FakeExp:
            def get(self, plat, algo, ds):
                return None

        out = mod._series_from_grid(FakeExp(), ["a"], ["x", "y"], lambda r: 1)
        assert out == {"a": [None, None]}
