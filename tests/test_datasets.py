"""Tests for the dataset registry and structure-matched synthesizers.

The Table 5 band assertions are the calibration contract: if a
generator drifts away from the paper's structural fingerprint, these
fail.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.datasets import (
    DATASET_NAMES,
    PAPER_BFS_TABLE5,
    PAPER_SPECS_TABLE2,
    dataset_spec,
    load_dataset,
)
from repro.datasets.registry import bfs_source
from repro.graph.properties import average_degree, connected_component_labels


class TestRegistry:
    def test_seven_datasets(self):
        assert len(DATASET_NAMES) == 7
        assert DATASET_NAMES == (
            "amazon", "wikitalk", "kgs", "citation", "dotaleague",
            "synth", "friendster",
        )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_spec("facebook")

    def test_unknown_load(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_caching_returns_same_object(self):
        assert load_dataset("kgs") is load_dataset("kgs")

    def test_scale_changes_size(self):
        small = load_dataset("kgs", scale=0.1)
        full = load_dataset("kgs")
        assert small.num_vertices < full.num_vertices

    def test_names_are_clean(self):
        for name in DATASET_NAMES:
            assert load_dataset(name, scale=0.05).name == name

    def test_bfs_source_valid(self):
        for name in DATASET_NAMES:
            g = load_dataset(name, scale=0.05)
            src = bfs_source(g)
            assert 0 <= src < g.num_vertices
            assert g.out_degree(src) > 0

    def test_seed_override(self):
        a = load_dataset("kgs", scale=0.1, seed=1)
        b = load_dataset("kgs", scale=0.1, seed=2)
        assert a != b


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestStructure:
    def test_directivity_matches_paper(self, name):
        g = load_dataset(name)
        assert g.directed == PAPER_SPECS_TABLE2[name].directed

    def test_connected(self, name):
        """Footnote 1: every dataset is its largest connected component."""
        g = load_dataset(name)
        labels = connected_component_labels(g)
        assert len(np.unique(labels)) == 1

    def test_deterministic(self, name):
        a = load_dataset(name, scale=0.05, seed=99)
        from repro.datasets.registry import _cache

        key = (name, 0.05, 99)
        _cache.pop(key, None)
        b = load_dataset(name, scale=0.05, seed=99)
        assert a == b


class TestTable2Calibration:
    def test_size_ordering_preserved(self):
        """Friendster has by far the most edges; DotaLeague is second."""
        sizes = {n: load_dataset(n).num_edges for n in DATASET_NAMES}
        ordered = sorted(sizes, key=sizes.get)
        assert ordered[-1] == "friendster"
        assert ordered[-2] == "dotaleague"

    def test_dotaleague_is_densest(self):
        degs = {n: average_degree(load_dataset(n)) for n in DATASET_NAMES}
        assert max(degs, key=degs.get) == "dotaleague"
        assert degs["dotaleague"] > 500

    def test_kgs_degree_band(self):
        d = average_degree(load_dataset("kgs"))
        assert 90 <= d <= 135  # paper: 113

    def test_synth_degree_band(self):
        d = average_degree(load_dataset("synth"))
        assert 40 <= d <= 65  # paper: 54

    def test_friendster_degree_band(self):
        d = average_degree(load_dataset("friendster"))
        assert 40 <= d <= 70  # paper: 55

    def test_sparse_directed_graphs(self):
        for name in ("amazon", "wikitalk", "citation"):
            d = average_degree(load_dataset(name))
            assert d <= 8  # paper: 5, 2, 4


class TestTable5Calibration:
    """BFS statistics must land in a band around the paper's Table 5."""

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_coverage_band(self, name):
        g = load_dataset(name)
        res = get_algorithm("bfs").run_reference(g)
        paper = PAPER_BFS_TABLE5[name].coverage_percent
        measured = res.coverage * 100
        if paper >= 98.0:
            assert measured >= 95.0
        else:  # citation: 0.1 %
            assert measured <= 5.0

    @pytest.mark.parametrize(
        "name,lo,hi",
        [
            ("amazon", 40, 140),  # paper 68: the clear outlier
            ("wikitalk", 5, 12),  # paper 8
            ("kgs", 5, 13),  # paper 9
            ("citation", 5, 25),  # paper 11; depth is source-bimodal
            ("dotaleague", 3, 9),  # paper 6
            ("synth", 4, 12),  # paper 8
            ("friendster", 16, 30),  # paper 23
        ],
    )
    def test_iteration_band(self, name, lo, hi):
        g = load_dataset(name)
        res = get_algorithm("bfs").run_reference(g)
        assert lo <= res.iterations <= hi

    def test_amazon_has_most_iterations(self):
        iters = {
            n: get_algorithm("bfs").run_reference(load_dataset(n)).iterations
            for n in DATASET_NAMES
        }
        assert max(iters, key=iters.get) == "amazon"


class TestHubStructure:
    def test_wikitalk_hubs_dominate(self):
        g = load_dataset("wikitalk")
        deg = np.asarray(g.out_degree())
        # admins have degree ~4 % of V; everyone else is tiny
        assert deg.max() > 0.02 * g.num_vertices
        assert np.median(deg) <= 4

    def test_citation_low_reachability_from_any_source(self):
        from repro.algorithms.bfs import bfs_levels

        g = load_dataset("citation")
        rng = np.random.default_rng(5)
        for _ in range(3):
            src = int(rng.integers(0, g.num_vertices))
            levels = bfs_levels(g, src)
            assert np.count_nonzero(levels >= 0) <= 0.1 * g.num_vertices
