"""Neo4j model tests: caches, thrashing, lazy reads, ingestion."""

import pytest

from repro.datasets import INGESTION_TABLE6, load_dataset
from repro.platforms import JobTimeout, get_platform
from repro.platforms.neo4j import Neo4j
from repro.platforms.scale import ScaleModel


@pytest.fixture
def neo():
    return Neo4j()


class TestColdHotCache:
    def test_cold_slower_than_hot(self, neo):
        g = load_dataset("dotaleague")
        hot = neo.run("bfs", g, cache="hot").execution_time
        cold = neo.run("bfs", g, cache="cold").execution_time
        assert cold > hot

    def test_citation_ratio_much_larger_than_dotaleague(self, neo):
        """Paper Section 4.1.1: cold/hot is ~45 for Citation and ~5
        for DotaLeague — sparse graphs seek, dense graphs stream."""
        ratios = {}
        for ds in ("citation", "dotaleague"):
            g = load_dataset(ds)
            hot = neo.run("bfs", g, cache="hot").execution_time
            cold = neo.run("bfs", g, cache="cold").execution_time
            ratios[ds] = cold / hot
        assert ratios["citation"] > 4 * ratios["dotaleague"]
        assert ratios["dotaleague"] > 2

    def test_invalid_cache_mode(self, neo, random_graph):
        with pytest.raises(ValueError):
            neo.run("bfs", random_graph, cache="lukewarm")


class TestLazyReads:
    def test_low_coverage_bfs_is_fast(self, neo):
        """Citation BFS touches ~1 % of the graph; 'lazy read ...
        accelerates traversal' (Section 4.1.1)."""
        cit = neo.run("bfs", load_dataset("citation")).execution_time
        kgs = neo.run("bfs", load_dataset("kgs")).execution_time
        assert cit < kgs


class TestThrashing:
    def test_synth_exceeds_object_cache(self, neo):
        g = load_dataset("synth")
        s = ScaleModel.for_graph(g)
        assert neo.object_cache_bytes(g, s) > neo.heap_bytes
        assert neo.thrash_probability(g, s) > 0

    def test_dotaleague_fits(self, neo):
        g = load_dataset("dotaleague")
        s = ScaleModel.for_graph(g)
        assert neo.thrash_probability(g, s) == 0.0

    def test_synth_bfs_takes_hours(self, neo):
        """Paper: 'the hot-cache value of Synth is about 17 hours'."""
        t = neo.run("bfs", load_dataset("synth")).execution_time
        assert 8 * 3600 < t < 20 * 3600

    def test_synth_orders_of_magnitude_slower_than_kgs(self, neo):
        t_synth = neo.run("bfs", load_dataset("synth")).execution_time
        t_kgs = neo.run("bfs", load_dataset("kgs")).execution_time
        assert t_synth > 100 * t_kgs

    def test_friendster_never_completes(self, neo):
        with pytest.raises(JobTimeout):
            neo.run("bfs", load_dataset("friendster"))


class TestIngestion:
    @pytest.mark.parametrize(
        "name", ["amazon", "wikitalk", "kgs", "citation", "dotaleague", "synth"]
    )
    def test_within_2x_of_paper(self, neo, name):
        """Table 6's Neo4j column, hours, irregular across datasets."""
        measured_h = neo.ingest_seconds(load_dataset(name)) / 3600
        paper_h = INGESTION_TABLE6[name][1]
        assert paper_h is not None
        assert paper_h / 2 <= measured_h <= paper_h * 2

    def test_vertex_heavy_graphs_cost_most(self, neo):
        """WikiTalk (2.4M vertices) ingests far slower than KGS
        (293k vertices) despite having fewer edges."""
        t_wiki = neo.ingest_seconds(load_dataset("wikitalk"))
        t_kgs = neo.ingest_seconds(load_dataset("kgs"))
        assert t_wiki > 3 * t_kgs

    def test_orders_of_magnitude_slower_than_hdfs(self, neo):
        """'The data ingestion time of Neo4j is up to several orders of
        magnitude longer than that of HDFS' (Section 4.4)."""
        hadoop = get_platform("hadoop")
        for name in ("amazon", "kgs", "dotaleague"):
            g = load_dataset(name)
            assert neo.ingest_seconds(g) > 100 * hadoop.ingest_seconds(g)


class TestRates:
    def test_default_timeout_is_20h(self, neo):
        assert neo.default_timeout == pytest.approx(20 * 3600)

    def test_not_distributed(self, neo):
        assert not neo.distributed

    def test_unknown_algorithm_gets_default_rate(self, neo, random_graph):
        # any registered algorithm missing from op_rates still runs
        class Fake:
            pass

        assert neo.op_rates.get("nonexistent", 1e6) == 1e6
